"""Vantage-point placement optimization against ground truth.

"Where should the next K probes sit?" is a coverage problem: each
candidate VP sees a fixed set of ground-truth CO edges (the links its
forwarding paths actually cross), and picking K VPs to maximize the
union is submodular max-coverage — greedy gets within ``1 − 1/e`` of
optimal, and seeded stochastic restarts claw back some of the rest.

The optimizer walks the substrate's *forwarding paths* rather than
running traceroutes: placement asks what a VP could possibly observe,
and the path oracle answers that exactly and cheaply.  The random
baseline replays the same scoring over seeded random K-subsets, so the
reported gain is attributable to placement alone.
"""

from __future__ import annotations

import ipaddress
import random
from dataclasses import dataclass, field

from repro.errors import RoutingError
from repro.net.router import _stable_hash


@dataclass(frozen=True)
class PlacementResult:
    """The outcome of one placement optimization."""

    #: How many VPs were requested.
    k: int
    #: Chosen VP names, in greedy pick order.
    chosen: "list[str]"
    #: Ground-truth directed CO edges the chosen set covers / total.
    covered_edges: int
    total_edges: int
    #: Mean covered-edge recall of seeded random K-subsets.
    random_recall: float
    random_trials: int
    #: Per-pick marginal gains (edge counts), same order as ``chosen``.
    marginal_gains: "list[int]" = field(default_factory=list)

    @property
    def edge_recall(self) -> float:
        return self.covered_edges / self.total_edges if self.total_edges else 1.0

    @property
    def gain_over_random(self) -> float:
        return self.edge_recall - self.random_recall

    def as_dict(self) -> dict:
        return {
            "k": self.k,
            "chosen": list(self.chosen),
            "covered_edges": self.covered_edges,
            "total_edges": self.total_edges,
            "edge_recall": round(self.edge_recall, 6),
            "random_recall": round(self.random_recall, 6),
            "random_trials": self.random_trials,
            "marginal_gains": list(self.marginal_gains),
        }


class VpPlacementOptimizer:
    """Greedy / seeded-stochastic max-coverage VP selection.

    Candidates default to the *external* members of *vps* (sources
    outside the ISP's pool — the populations the paper could actually
    rent); internal VPs would trivially win by sitting on the edges
    they claim to discover.
    """

    def __init__(
        self,
        internet,
        isp,
        vps,
        targets_per_region: int = 12,
        seed: int = 0,
    ) -> None:
        self.internet = internet
        self.isp = isp
        self.network = internet.network
        self.seed = seed
        pool = ipaddress.ip_network(str(isp.allocator.pool))
        self.candidates = [
            vp for vp in vps
            if ipaddress.ip_address(vp.src_address) not in pool
        ]
        self.targets = self._sample_targets(targets_per_region)
        self.truth_edges = self._truth_edges()
        self._coverage: "dict[str, frozenset]" = {}

    # ------------------------------------------------------------------
    # Ground truth and the per-VP coverage oracle
    # ------------------------------------------------------------------
    def _truth_edges(self) -> "frozenset[tuple[str, str]]":
        edges = set()
        for region_name in sorted(self.isp.regions):
            for up, down in self.isp.regions[region_name].edge_pairs():
                edges.add((up, down))
        return frozenset(edges)

    def _sample_targets(self, per_region: int) -> "list[str]":
        """A seeded spread of one-per-/24 probe addresses per region."""
        targets = []
        for region_name in sorted(self.isp.region_prefixes):
            region_targets = []
            for prefix in self.isp.region_prefixes[region_name]:
                for subnet in prefix.subnets(new_prefix=24):
                    region_targets.append(str(subnet.network_address + 1))
            rng = random.Random(f"bias-place|{self.seed}|{region_name}")
            if len(region_targets) > per_region:
                region_targets = rng.sample(region_targets, per_region)
            targets.extend(region_targets)
        return targets

    def coverage_of(self, vp) -> "frozenset[tuple[str, str]]":
        """Ground-truth CO edges crossed by *vp*'s forwarding paths."""
        cached = self._coverage.get(vp.name)
        if cached is not None:
            return cached
        covered = set()
        for address in self.targets:
            dst, _exists = self.network.route_target(address)
            if dst is None:
                continue
            flow = _stable_hash("bias-place", vp.name, address)
            try:
                path = self.network.forwarding_path(vp.host, dst, flow_id=flow)
            except RoutingError:
                continue
            for prev, cur in zip(path, path[1:]):
                co_a, co_b = prev.co, cur.co
                if co_a is None or co_b is None or co_a is co_b:
                    continue
                if (co_a.uid, co_b.uid) in self.truth_edges:
                    covered.add((co_a.uid, co_b.uid))
                if (co_b.uid, co_a.uid) in self.truth_edges:
                    covered.add((co_b.uid, co_a.uid))
        result = frozenset(covered)
        self._coverage[vp.name] = result
        return result

    # ------------------------------------------------------------------
    # Optimization
    # ------------------------------------------------------------------
    def _greedy(self, k: int, rng: "random.Random | None" = None):
        """One greedy pass; *rng* (when given) picks among near-ties."""
        chosen: "list" = []
        gains: "list[int]" = []
        covered: "set[tuple[str, str]]" = set()
        remaining = list(self.candidates)
        while remaining and len(chosen) < k:
            scored = sorted(
                (
                    (len(self.coverage_of(vp) - covered), vp.name, vp)
                    for vp in remaining
                ),
                reverse=True,
            )
            if rng is None:
                gain, _name, pick = scored[0]
            else:
                # Stochastic restart: sample among the leaders so
                # different seeds explore different greedy trajectories.
                pool_size = min(3, len(scored))
                gain, _name, pick = scored[rng.randrange(pool_size)]
            if gain == 0 and chosen:
                break
            chosen.append(pick)
            gains.append(gain)
            covered |= self.coverage_of(pick)
            remaining.remove(pick)
        return chosen, gains, covered

    def optimize(self, k: int, restarts: int = 4) -> PlacementResult:
        """Pick K VPs maximizing covered ground-truth edge count.

        Runs one deterministic greedy pass plus *restarts* seeded
        stochastic passes and keeps the best; ties prefer the
        deterministic pass so results are stable run-to-run.
        """
        best = self._greedy(k)
        for restart in range(restarts):
            rng = random.Random(f"bias-place-restart|{self.seed}|{restart}")
            attempt = self._greedy(k, rng)
            if len(attempt[2]) > len(best[2]):
                best = attempt
        chosen, gains, covered = best
        return PlacementResult(
            k=k,
            chosen=[vp.name for vp in chosen],
            covered_edges=len(covered),
            total_edges=len(self.truth_edges),
            random_recall=self.random_baseline(k),
            random_trials=self.baseline_trials,
            marginal_gains=gains,
        )

    #: Random K-subset draws averaged into the baseline.
    baseline_trials = 20

    def random_baseline(self, k: int) -> float:
        """Mean edge recall of seeded random K-subsets of the candidates."""
        if not self.truth_edges or not self.candidates:
            return 0.0
        k = min(k, len(self.candidates))
        total = 0.0
        for trial in range(self.baseline_trials):
            rng = random.Random(f"bias-place-baseline|{self.seed}|{trial}")
            subset = rng.sample(self.candidates, k)
            covered = set()
            for vp in subset:
                covered |= self.coverage_of(vp)
            total += len(covered) / len(self.truth_edges)
        return total / self.baseline_trials
