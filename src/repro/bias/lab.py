"""The bias-lab runner: one seeded scenario, four measurements.

:class:`BiasLab` runs a small seeded traceroute campaign over the
simulated internet (optionally under a policy route model), then turns
the same corpus four ways:

1. infers an IP→CO mapping and scores **species estimators** against
   the generator's ground-truth CO and link counts;
2. runs the **VP-placement optimizer** and its random baseline;
3. replays the corpus through the **streaming** engine and checks
   digest parity against the batch stages;
4. perturbs one rDNS record and confirms the **epoch change detector**
   reports exactly that move.

Everything is seeded and span/metric-instrumented; the outcome is the
validated ``bias-report`` artifact (:mod:`repro.bias.report`), which CI
gates on.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.alias.resolve import AliasSets
from repro.bias.incremental import (
    EpochChangeDetector,
    IncrementalCoGraph,
    StreamSnapshot,
    region_digest,
)
from repro.bias.placement import PlacementResult, VpPlacementOptimizer
from repro.bias.routemodel import build_route_model
from repro.bias.species import SpeciesEstimate, estimate_corpus
from repro.corpus.columnar import TraceCorpus
from repro.errors import TopologyError
from repro.infer.adjacency import AdjacencyExtractor
from repro.infer.ip2co import Ip2CoMapper
from repro.infer.refine import RegionRefiner
from repro.measure.traceroute import Tracerouter
from repro.net.router import _stable_hash
from repro.obs import MetricsRegistry, Tracer
from repro.rdns.regexes import HostnameParser


@dataclass
class SpeciesReport:
    """One species class's estimate next to its ground truth."""

    estimate: SpeciesEstimate
    truth: int

    @property
    def relative_error(self) -> float:
        """|chao1 − truth| / truth (0.0 when truth is empty)."""
        if not self.truth:
            return 0.0
        return abs(self.estimate.chao1 - self.truth) / self.truth

    def as_dict(self) -> dict:
        payload = self.estimate.as_dict()
        payload["truth"] = self.truth
        payload["relative_error"] = round(self.relative_error, 6)
        return payload


@dataclass
class StreamReport:
    """Streaming-vs-batch parity plus the epoch-detector outcome."""

    traces: int
    digest: str
    parity: bool
    ingest_seconds: float
    batch_seconds: float
    epoch_changes: int

    def as_dict(self) -> dict:
        return {
            "traces": self.traces,
            "digest": self.digest,
            "parity": self.parity,
            "ingest_seconds": round(self.ingest_seconds, 6),
            "batch_seconds": round(self.batch_seconds, 6),
            "epoch_changes": self.epoch_changes,
        }


@dataclass
class BiasLabResult:
    """Everything one lab run measured."""

    isp: str
    seed: int
    route_model: str
    vp_count: int
    targets: int
    traces: "list" = field(default_factory=list)
    co_species: "SpeciesReport | None" = None
    link_species: "SpeciesReport | None" = None
    placement: "PlacementResult | None" = None
    stream: "StreamReport | None" = None
    snapshot: "StreamSnapshot | None" = None


class BiasLab:
    """Runs the seeded bias-lab scenario end to end."""

    def __init__(
        self,
        internet,
        isp: str = "comcast",
        vp_count: int = 6,
        targets_per_region: int = 24,
        rdns_fraction: float = 0.15,
        placement_k: int = 4,
        seed: int = 0,
        route_model: str = "spf",
        tracer: "Tracer | None" = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.internet = internet
        self.isp_name = isp
        self.isp = getattr(internet, isp, None)
        if self.isp is None:
            raise TopologyError(f"internet has no ISP named {isp!r}")
        self.vp_count = max(1, vp_count)
        self.targets_per_region = max(1, targets_per_region)
        self.rdns_fraction = min(1.0, max(0.0, rdns_fraction))
        self.placement_k = max(1, placement_k)
        self.seed = seed
        self.route_model_name = route_model
        self.route_model = build_route_model(internet, route_model)
        self.obs = tracer or Tracer(seed=seed)
        self.metrics = metrics or MetricsRegistry()
        self.parser = HostnameParser()
        self.vps = list(internet.build_standard_vps())

    # ------------------------------------------------------------------
    def _sample_targets(self, salt: str) -> "list[str]":
        """A seeded per-region sample of /24 probe targets.

        *salt* keys the RNG, so each VP draws its own independent slice
        of the announced /24 space (how real campaigns split a target
        list across probers).  The overlap structure this induces —
        each /24 covered by a Binomial(vps, m/256) number of VPs — is
        what gives the species estimators a meaningful singleton/
        doubleton spectrum to extrapolate from.
        """
        targets = []
        for region_name in sorted(self.isp.region_prefixes):
            region_targets = []
            for prefix in self.isp.region_prefixes[region_name]:
                for subnet in prefix.subnets(new_prefix=24):
                    region_targets.append(str(subnet.network_address + 1))
            rng = random.Random(f"bias-lab|{self.seed}|{salt}|{region_name}")
            if len(region_targets) > self.targets_per_region:
                region_targets = rng.sample(
                    region_targets, self.targets_per_region
                )
            targets.extend(region_targets)
        return targets

    def _sample_rdns_targets(self, salt: str) -> "list[str]":
        """A seeded per-VP sample of rDNS-known infrastructure targets.

        Probes to unused customer addresses stop replying one hop short
        of the edge router (the customer side never answers), so the
        /24 sweep alone can never observe most edge COs — exactly the
        regime the paper's pipeline escapes with its rDNS-derived
        target sweep.  Each VP draws ``rdns_fraction`` of the snapshot
        addresses whose name parses as a regional CO of this ISP.
        """
        candidates = []
        rdns = self.internet.network.rdns
        for address, hostname in rdns.snapshot_items():
            if self.parser.regional_co(hostname, self.isp_name) is not None:
                candidates.append(address)
        candidates.sort()
        count = int(len(candidates) * self.rdns_fraction)
        if count >= len(candidates):
            return candidates
        rng = random.Random(f"bias-lab-rdns|{self.seed}|{salt}")
        return rng.sample(candidates, count)

    def _collect(self) -> "tuple[list, int]":
        """The seeded campaign: N external VPs, each probing its own
        per-region target sample.  Returns (traces, distinct targets)."""
        import ipaddress

        pool = ipaddress.ip_network(str(self.isp.allocator.pool))
        external = [
            vp for vp in self.vps
            if ipaddress.ip_address(vp.src_address) not in pool
        ]
        probers = external[: self.vp_count]
        tracer = Tracerouter(self.internet.network, attempts=1)
        network = self.internet.network
        saved_model = network.route_model
        network.route_model = self.route_model
        traces = []
        distinct: "set[str]" = set()
        try:
            for vp in probers:
                vp_targets = self._sample_targets(vp.name)
                vp_targets += self._sample_rdns_targets(vp.name)
                for address in vp_targets:
                    distinct.add(address)
                    # Mask to a signed 64-bit range: flow ids land in the
                    # corpus's int64 flow_id column.
                    flow = _stable_hash("bias-lab", vp.name, address)
                    traces.append(tracer.trace(
                        vp.host, address,
                        flow_id=flow & 0x7FFFFFFFFFFFFFFF,
                        src_address=vp.src_address,
                    ))
        finally:
            network.route_model = saved_model
        tracer.publish_metrics(self.metrics, prefix="bias.tracer.")
        return traces, len(distinct)

    # ------------------------------------------------------------------
    def run(self) -> BiasLabResult:
        result = BiasLabResult(
            isp=self.isp_name, seed=self.seed,
            route_model=self.route_model_name,
            vp_count=self.vp_count, targets=0,
        )
        with self.obs.span("bias.lab", isp=self.isp_name, seed=self.seed,
                           route_model=self.route_model_name):
            with self.obs.span("bias.corpus") as span:
                traces, distinct_targets = self._collect()
                result.targets = distinct_targets
                span.attributes["targets"] = distinct_targets
                span.attributes["traces"] = len(traces)
            result.traces = traces
            rdns = self.internet.network.rdns
            mapper = Ip2CoMapper(rdns, self.isp_name, parser=self.parser)
            mapping = mapper.build(traces, AliasSets([]))

            with self.obs.span("bias.species") as span:
                corpus = TraceCorpus.from_traces(traces)
                co_est, link_est = estimate_corpus(corpus, mapping)
                co_truth = sum(
                    len(region.cos) for region in self.isp.regions.values()
                )
                link_truth = sum(
                    region.edge_count()
                    for region in self.isp.regions.values()
                )
                result.co_species = SpeciesReport(co_est, co_truth)
                result.link_species = SpeciesReport(link_est, link_truth)
                span.attributes["co_observed"] = co_est.observed
                span.attributes["link_observed"] = link_est.observed
                self.metrics.set_gauge("bias.species.co_chao1", co_est.chao1)
                self.metrics.set_gauge(
                    "bias.species.link_chao1", link_est.chao1
                )

            with self.obs.span("bias.placement", k=self.placement_k) as span:
                optimizer = VpPlacementOptimizer(
                    self.internet, self.isp, self.vps,
                    targets_per_region=self.targets_per_region,
                    seed=self.seed,
                )
                result.placement = optimizer.optimize(self.placement_k)
                span.attributes["edge_recall"] = result.placement.edge_recall
                self.metrics.set_gauge(
                    "bias.placement.edge_recall", result.placement.edge_recall
                )
                self.metrics.set_gauge(
                    "bias.placement.random_recall",
                    result.placement.random_recall,
                )

            with self.obs.span("bias.stream", traces=len(traces)):
                result.stream, result.snapshot = self._stream_section(
                    traces, mapping
                )
                self.metrics.set_gauge(
                    "bias.stream.parity", int(result.stream.parity)
                )
                self.metrics.set_gauge(
                    "bias.stream.traces", result.stream.traces
                )
        return result

    # ------------------------------------------------------------------
    def _stream_section(self, traces, mapping):
        """Streaming replay + batch oracle + the epoch-detector drill."""
        rdns = self.internet.network.rdns
        started = time.perf_counter()
        graph = IncrementalCoGraph(rdns, self.isp_name, parser=self.parser)
        for trace in traces:
            graph.ingest(trace)
        snapshot = graph.snapshot()
        ingest_seconds = time.perf_counter() - started

        started = time.perf_counter()
        extractor = AdjacencyExtractor(
            snapshot.mapping, rdns, self.isp_name, parser=self.parser
        )
        adjacencies = extractor.extract(traces)
        refiner = RegionRefiner()
        batch_regions = {
            name: refiner.refine(name, adjacencies.per_region[name])
            for name in adjacencies.regions()
        }
        batch_seconds = time.perf_counter() - started
        parity = snapshot.digest == region_digest(batch_regions)

        # Epoch drill: move one mapped address's PTR to another CO's
        # hostname, confirm the detector reports exactly that address,
        # then restore the record.
        epoch_changes = 0
        mapped = [a for a in sorted(mapping.mapping)
                  if rdns.lookup(a) is not None]
        if len(mapped) >= 2:
            moved = mapped[0]
            donor = next(
                (a for a in mapped[1:]
                 if mapping.mapping[a] != mapping.mapping[moved]),
                None,
            )
            if donor is not None:
                detector = EpochChangeDetector(
                    rdns, self.isp_name, parser=self.parser
                )
                detector.watch(mapped)
                original = rdns.lookup(moved)
                rdns.set(moved, rdns.lookup(donor))
                epoch_changes = len(detector.poll())
                rdns.set(moved, original)

        return StreamReport(
            traces=len(traces),
            digest=snapshot.digest,
            parity=parity,
            ingest_seconds=ingest_seconds,
            batch_seconds=batch_seconds,
            epoch_changes=epoch_changes,
        ), snapshot
