"""Thread-based speculate-then-replay runner: the **parity oracle**.

.. note::
   This runner is *not* the production parallel path.  Python threads
   buy no speedup for this CPU-bound workload (the GIL serializes the
   probing; benchmarks showed it slightly slower than serial), so the
   CLI no longer exposes it.  It is kept because its two-pass
   architecture is the simplest in-process demonstration that
   speculation preserves byte-identical output — the property the
   process-sharded :class:`~repro.measure.supervisor.SupervisedCampaignRunner`
   (the production path, ``--workers N``) inherits from it and is
   tested against.

:class:`ParallelCampaignRunner` runs a campaign stage in two passes:

1. **Speculate** — jobs are partitioned by vantage point (each VP's
   jobs keep their order) and handed to a ``concurrent.futures`` thread
   pool.  Every worker probes through its own *substrate view*: the
   shared network wrapped with a private :class:`FaultInjector` built
   from the same :class:`FaultPlan`.  Because every fault decision is
   keyed on event identity (seed + probe/trace key), a worker reaches
   exactly the trace the serial runner would have produced for that
   (VP, target, flow) job, regardless of scheduling — along with the
   probe-counter and fault-stat deltas the trace cost.
2. **Replay** — the base class's serial loop runs unchanged (checkpoint
   skipping, ``stop_after`` interruption, VP-death bookkeeping,
   failover reassignment).  Its :meth:`CampaignRunner._run_trace` seam
   consumes the speculative trace and applies its deltas to the
   canonical tracer and injector, so health reports, checkpoints, and
   dropout thresholds advance exactly as in a serial run.

The one fault class whose outcome depends on *cross-VP* ordering — VP
death and the failover reassignments it causes — is resolved entirely
in the replay pass: a job reassigned to a stand-in finds no speculative
entry under the stand-in's key and falls through to a synchronous probe
on the canonical substrate.  That is what makes the merged corpus
byte-identical to the serial runner's, with or without faults, and
across checkpoint/resume.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro.faults.injector import FaultInjector
from repro.measure.runner import CampaignRunner
from repro.measure.traceroute import TraceResult, Tracerouter
from repro.measure.vantage import VantagePoint
from repro.perf.cache import normalize_address

#: Fault-stat fields incremented on the probe path (inside a single
#: trace) — the ones speculation must capture and replay.  VP flaps and
#: deaths happen in the runner loop; stale lookups happen at inference
#: time.  Both therefore never occur inside a worker.
_TRACE_FAULT_FIELDS = ("probes_lost", "rate_limited", "rdns_timeouts", "lsp_flaps")


class _RdnsView:
    """A per-worker face of the shared :class:`RdnsStore`.

    Re-implements ``dig`` against the store's raw records with the
    worker's own injector, so concurrent workers never touch the
    canonical injector's counters.  Everything else delegates.
    """

    def __init__(self, base, injector) -> None:
        self._base = base
        self.faults = injector

    def dig(self, address, fault_key=None):
        key = normalize_address(address)
        if self.faults is not None and self.faults.rdns_timeout(key, fault_key):
            return None
        return self._base.dig_record(key)

    def __getattr__(self, name):
        return getattr(self._base, name)


class _SubstrateView:
    """A per-worker face of the shared :class:`Network`.

    Forwarding state (SSSP caches, MPLS tables, reply policies) is
    read-only during a campaign and shared; only the fault injector —
    and through it the rDNS dig path — is private to the worker.
    """

    def __init__(self, base, injector) -> None:
        self._base = base
        self.faults = injector
        self.rdns = _RdnsView(base.rdns, injector)

    def __getattr__(self, name):
        return getattr(self._base, name)


class _Speculative:
    """One precomputed job: the trace plus the counters it cost."""

    __slots__ = ("trace", "tracer_delta", "fault_delta")

    def __init__(self, trace, tracer_delta, fault_delta) -> None:
        self.trace = trace
        self.tracer_delta = tracer_delta
        self.fault_delta = fault_delta


class ParallelCampaignRunner(CampaignRunner):
    """A :class:`CampaignRunner` that precomputes traces concurrently.

    Drop-in compatible: same constructor plus ``workers``, same
    :meth:`run` contract, same checkpoints, byte-identical corpus.

    Kept as the in-process parity oracle (see the module docstring);
    use :class:`~repro.measure.supervisor.SupervisedCampaignRunner`
    for actual wall-clock speedup and crash tolerance.
    """

    def __init__(
        self,
        tracer: Tracerouter,
        vps: "list[VantagePoint]",
        checkpoint=None,
        min_vps: int = 1,
        failover: bool = True,
        checkpoint_every: int = 2000,
        stop_after: "int | None" = None,
        workers: int = 4,
        obs=None,
        metrics=None,
    ) -> None:
        super().__init__(
            tracer, vps, checkpoint=checkpoint, min_vps=min_vps,
            failover=failover, checkpoint_every=checkpoint_every,
            stop_after=stop_after, obs=obs, metrics=metrics,
        )
        self.workers = max(1, int(workers))
        self._speculative: "dict[tuple[str, str, int], _Speculative]" = {}

    # ------------------------------------------------------------------
    # Speculation
    # ------------------------------------------------------------------
    def _worker_tracer(self) -> "tuple[Tracerouter, FaultInjector | None]":
        """A private tracer over a private substrate view."""
        injector = (
            FaultInjector(self.injector.plan)
            if self.injector is not None
            else None
        )
        network = _SubstrateView(self.tracer.network, injector)
        tracer = Tracerouter(
            network,
            max_ttl=self.tracer.max_ttl,
            jitter_ms=self.tracer.jitter_ms,
            attempts=self.tracer.attempts,
            backoff_ms=self.tracer.backoff_ms,
        )
        return tracer, injector

    def _speculate_partition(
        self, vp: VantagePoint, targets: "list[str]", flow_id: int
    ) -> "dict[tuple[str, str, int], _Speculative]":
        tracer, injector = self._worker_tracer()
        results: "dict[tuple[str, str, int], _Speculative]" = {}
        counters_before = tracer.counters()
        faults_before = (
            {name: getattr(injector.stats, name) for name in _TRACE_FAULT_FIELDS}
            if injector is not None
            else None
        )
        for target in targets:
            trace = tracer.trace(
                vp.host, target, flow_id=flow_id, src_address=vp.src_address
            )
            counters_after = tracer.counters()
            tracer_delta = {
                key: counters_after[key] - counters_before[key]
                for key in counters_after
            }
            counters_before = counters_after
            fault_delta = None
            if injector is not None:
                faults_after = {
                    name: getattr(injector.stats, name)
                    for name in _TRACE_FAULT_FIELDS
                }
                fault_delta = {
                    name: faults_after[name] - faults_before[name]
                    for name in _TRACE_FAULT_FIELDS
                }
                faults_before = faults_after
            results[(vp.name, target, flow_id)] = _Speculative(
                trace, tracer_delta, fault_delta
            )
        return results

    def _precompute(self, jobs, stage: str, flow_id: int) -> None:
        """Fill the speculation table for this stage's pending jobs."""
        if self.checkpoint is not None and self.checkpoint.stage_complete(stage):
            return
        done: "set[tuple[str, str]]" = set()
        if self.checkpoint is not None and self.checkpoint.stage(stage) is not None:
            done = self.checkpoint.stage_done(stage)
        pending = [
            (vp, target) for vp, target in jobs if (vp.name, target) not in done
        ]
        if self.stop_after is not None:
            budget = max(0, self.stop_after - self._executed)
            pending = pending[:budget]
        partitions: "dict[str, list[str]]" = {}
        by_name: "dict[str, VantagePoint]" = {}
        for vp, target in pending:
            # Jobs on already-dead VPs will be reassigned during replay;
            # their stand-in runs synchronously on the canonical tracer.
            if not self.fleet.is_alive(vp.name):
                continue
            partitions.setdefault(vp.name, []).append(target)
            by_name[vp.name] = vp
        if not partitions:
            return
        with ThreadPoolExecutor(
            max_workers=min(self.workers, len(partitions))
        ) as pool:
            futures = [
                pool.submit(
                    self._speculate_partition, by_name[name], targets, flow_id
                )
                for name, targets in partitions.items()
            ]
            for future in futures:
                self._speculative.update(future.result())
        if self.metrics is not None:
            # Counters, not spans: workers never open spans, so the
            # span tree stays identical to a serial run's.
            self.metrics.set_gauge("parallel.workers", self.workers)
            self.metrics.inc(
                "parallel.speculated_jobs",
                sum(len(targets) for targets in partitions.values()),
            )

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def _run_trace(self, vp: VantagePoint, target: str, flow_id: int) -> TraceResult:
        speculative = self._speculative.pop((vp.name, target, flow_id), None)
        if speculative is None:
            # Cache miss: a failover stand-in, or a job speculation
            # skipped.  Runs synchronously on the canonical substrate,
            # exactly as the serial runner would.
            return super()._run_trace(vp, target, flow_id)
        tracer = self.tracer
        delta = speculative.tracer_delta
        tracer.probes_sent += int(delta["probes_sent"])
        tracer.traces_run += int(delta["traces_run"])
        tracer.probes_lost += int(delta["probes_lost"])
        tracer.probes_refused += int(delta["probes_refused"])
        tracer.probes_retried += int(delta["probes_retried"])
        tracer.backoff_ms_total += delta["backoff_ms_total"]
        if self.injector is not None and speculative.fault_delta is not None:
            stats = self.injector.stats
            for name in _TRACE_FAULT_FIELDS:
                setattr(
                    stats, name,
                    getattr(stats, name) + speculative.fault_delta[name],
                )
        return speculative.trace

    def run(
        self,
        jobs: "list[tuple[VantagePoint, str]]",
        stage: str = "campaign",
        flow_id: int = 0,
        keep_empty: bool = False,
    ):
        self._precompute(jobs, stage, flow_id)
        try:
            return super().run(
                jobs, stage=stage, flow_id=flow_id, keep_empty=keep_empty
            )
        finally:
            # Unconsumed entries (jobs that failed over, or a stage cut
            # short by stop_after) must not leak into later stages.
            self._speculative.clear()
