"""Vantage points.

A vantage point is a host attached somewhere on the simulated internet
from which traceroute/ping campaigns run.  The paper used 47 VPs in
access, cloud, and transit networks for the cable study (§5.1), CAIDA
Ark and RIPE Atlas probes inside AT&T regions (§6.1), public-WiFi
hotspots ("McTraceroute"), and cloud VMs for latency work (§5.5, §6.3).
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Optional

from repro.errors import MeasurementError
from repro.net.network import Network
from repro.net.router import ReplyPolicy, Router
from repro.topology.geography import City


@dataclass
class VantagePoint:
    """One measurement host: a router node plus its source address."""

    name: str
    kind: str  # "ark" | "atlas" | "cloud" | "wifi" | "transit" | "access"
    host: Router
    src_address: str
    city: Optional[City] = None

    def __post_init__(self) -> None:
        valid = {"ark", "atlas", "cloud", "wifi", "transit", "access", "server"}
        if self.kind not in valid:
            raise MeasurementError(f"unknown VP kind {self.kind!r}")


class VantagePointSet:
    """A named collection of vantage points."""

    def __init__(self) -> None:
        self._vps: dict[str, VantagePoint] = {}

    def __len__(self) -> int:
        return len(self._vps)

    def __iter__(self):
        return iter(sorted(self._vps.values(), key=lambda vp: vp.name))

    def add(self, vp: VantagePoint) -> VantagePoint:
        if vp.name in self._vps:
            raise MeasurementError(f"duplicate VP name {vp.name!r}")
        self._vps[vp.name] = vp
        return vp

    def get(self, name: str) -> VantagePoint:
        try:
            return self._vps[name]
        except KeyError as exc:
            raise MeasurementError(f"no VP named {name!r}") from exc

    def of_kind(self, kind: str) -> "list[VantagePoint]":
        return [vp for vp in self if vp.kind == kind]


class FleetView:
    """A campaign's live view of its fleet: who is alive, who replaces whom.

    The paper's fleets shrank mid-campaign (hotspots kicked the prober,
    phones lost signal); the runner marks such VPs dead here and picks
    deterministic stand-ins so a resumed campaign makes identical
    choices.
    """

    def __init__(self, vps) -> None:
        self._vps: "list[VantagePoint]" = list(vps)
        self._by_name = {vp.name: vp for vp in self._vps}
        if len(self._by_name) != len(self._vps):
            raise MeasurementError("fleet contains duplicate VP names")
        self._dead: "set[str]" = set()

    def __len__(self) -> int:
        return len(self._vps)

    @property
    def names(self) -> "list[str]":
        return [vp.name for vp in self._vps]

    @property
    def dead(self) -> "set[str]":
        return set(self._dead)

    def get(self, name: str) -> VantagePoint:
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise MeasurementError(f"no VP named {name!r} in fleet") from exc

    def is_alive(self, name: str) -> bool:
        return name in self._by_name and name not in self._dead

    def mark_dead(self, name: str) -> None:
        if name in self._by_name:
            self._dead.add(name)

    def alive(self) -> "list[VantagePoint]":
        """Surviving VPs, in fleet order."""
        return [vp for vp in self._vps if vp.name not in self._dead]

    def first_alive(self) -> "Optional[VantagePoint]":
        survivors = self.alive()
        return survivors[0] if survivors else None

    def stand_in(self, key: object) -> "Optional[VantagePoint]":
        """A deterministic surviving VP for the failed job *key*.

        Hashing the job identity (not a rotating counter) keeps the
        choice independent of execution order, so checkpoint resume
        reassigns identically.
        """
        from repro.net.router import _stable_hash

        survivors = self.alive()
        if not survivors:
            return None
        return survivors[_stable_hash("failover", key) % len(survivors)]


_HOST_SEQ = [0]


def attach_host(
    network: Network,
    parent: Router,
    name: str,
    host_subnet: "str | ipaddress.IPv4Network",
    length_km: float = 2.0,
    extra_delay_ms: float = 0.0,
) -> "tuple[Router, str]":
    """Attach a measurement host behind *parent* via a /30 subnet.

    Returns the host router and its source address.  The host responds
    to probes (it is a real machine) and gets a deterministic uid.
    """
    net = (
        ipaddress.ip_network(host_subnet)
        if isinstance(host_subnet, str)
        else host_subnet
    )
    if net.prefixlen != 30:
        raise MeasurementError("attach_host expects a /30 host subnet")
    base = int(net.network_address)
    parent_addr = ipaddress.IPv4Address(base + 1)
    host_addr = ipaddress.IPv4Address(base + 2)
    _HOST_SEQ[0] += 1
    host = Router(f"host-{name}-{_HOST_SEQ[0]:04d}", policy=ReplyPolicy())
    network.add_router(host)
    network.connect(
        parent, host, parent_addr, host_addr,
        prefixlen=30, length_km=length_km, extra_delay_ms=extra_delay_ms,
    )
    return host, str(host_addr)
