"""Deterministic sharding of a campaign stage's job list.

The supervised executor partitions a stage's ``(vantage point, target)``
jobs into *shards* — the unit of work a worker process executes, the
unit of retry after a crash, and the unit of quarantine when retries
run out.  Partitioning is a pure function of the job list: contiguous
chunks in job order, each with a **stable, content-addressed id**
(``<stage>/<index>-<digest>``), so

* a resumed campaign re-plans the identical shards and can reuse every
  shard result already persisted in the checkpoint (the digest guards
  against a done-set that shifted the partition);
* merging is trivially deterministic: concatenating shard results in
  shard-index order reproduces the original job order, which is what
  keeps the serial runner the byte-identical digest oracle.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

#: Default shards-per-worker over-partitioning factor.  More shards
#: than workers keeps the pool load-balanced and bounds the blast
#: radius of one crash to 1/(workers × factor) of the stage.
OVERPARTITION = 8


def _jobs_digest(jobs: "tuple[tuple[str, str], ...]") -> str:
    """Short content digest of a shard's job list."""
    blob = "|".join(f"{vp},{target}" for vp, target in jobs)
    return hashlib.blake2b(blob.encode(), digest_size=4).hexdigest()


@dataclass(frozen=True)
class Shard:
    """One contiguous slice of a stage's jobs, with a stable identity."""

    shard_id: str
    stage: str
    index: int
    #: ``(vp_name, target)`` pairs, in original job order.
    jobs: "tuple[tuple[str, str], ...]"
    flow_id: int = 0

    def as_dict(self) -> "dict[str, object]":
        return {
            "shard_id": self.shard_id,
            "stage": self.stage,
            "index": self.index,
            "jobs": [list(job) for job in self.jobs],
            "flow_id": self.flow_id,
        }

    @classmethod
    def from_dict(cls, payload: "dict[str, object]") -> "Shard":
        return cls(
            shard_id=payload["shard_id"],
            stage=payload["stage"],
            index=int(payload["index"]),
            jobs=tuple((vp, target) for vp, target in payload["jobs"]),
            flow_id=int(payload.get("flow_id", 0)),
        )


def shard_size_for(job_count: int, workers: int) -> int:
    """The default shard size: ``workers × OVERPARTITION`` shards."""
    target_shards = max(1, workers) * OVERPARTITION
    return max(1, math.ceil(job_count / target_shards))


def plan_shards(
    jobs: "list[tuple[str, str]]",
    stage: str,
    flow_id: int = 0,
    shard_size: "int | None" = None,
    workers: int = 4,
) -> "list[Shard]":
    """Partition *jobs* (``(vp_name, target)`` pairs) into shards.

    Deterministic: same jobs, same stage, same size → same shards with
    the same ids.  Job order is preserved within and across shards.
    """
    if not jobs:
        return []
    size = shard_size if shard_size and shard_size > 0 else (
        shard_size_for(len(jobs), workers)
    )
    shards: "list[Shard]" = []
    for index, start in enumerate(range(0, len(jobs), size)):
        chunk = tuple(
            (str(vp), str(target)) for vp, target in jobs[start:start + size]
        )
        shard_id = f"{stage}/{index:04d}-{_jobs_digest(chunk)}"
        shards.append(
            Shard(shard_id=shard_id, stage=stage, index=index, jobs=chunk,
                  flow_id=flow_id)
        )
    return shards


def merge_shard_results(
    shards: "list[Shard]", results_by_id: "dict[str, list]"
) -> "list":
    """Flatten per-shard result lists back into original job order.

    Missing shards (poisoned, never completed) contribute nothing;
    a present shard must carry exactly one result per job.
    """
    merged: "list" = []
    for shard in sorted(shards, key=lambda s: s.index):
        results = results_by_id.get(shard.shard_id)
        if results is None:
            continue
        if len(results) != len(shard.jobs):
            raise ValueError(
                f"shard {shard.shard_id}: {len(results)} results for "
                f"{len(shard.jobs)} jobs"
            )
        merged.extend(results)
    return merged
