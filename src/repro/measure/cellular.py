"""Cell towers and OpenCellID-style geolocation (§7.1.1).

GPS rarely works inside a truck, so ShipTraceroute logs the serving
cell's ``cellid`` at each round and converts it to a location later
using a public tower database.  The simulated database places towers on
a fixed grid: any coordinate resolves to its grid cell's tower, which
introduces the same few-km quantization error the real pipeline has.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MeasurementError
from repro.topology.geography import Geography, great_circle_km

#: Grid pitch in degrees (~0.2° ≈ 20 km, a rural macro-cell radius).
_GRID_DEG = 0.2


@dataclass(frozen=True)
class CellTower:
    """One tower: id plus its (grid-centre) location."""

    cellid: int
    lat: float
    lon: float


class CellDatabase:
    """Deterministic tower grid + OpenCellID-style lookup."""

    def __init__(self, grid_deg: float = _GRID_DEG) -> None:
        if grid_deg <= 0:
            raise MeasurementError("grid pitch must be positive")
        self.grid_deg = grid_deg

    def _cell_indices(self, lat: float, lon: float) -> "tuple[int, int]":
        return (
            int(round(lat / self.grid_deg)),
            int(round(lon / self.grid_deg)),
        )

    def serving_cell(self, lat: float, lon: float) -> CellTower:
        """The tower a phone at (lat, lon) camps on."""
        i, j = self._cell_indices(lat, lon)
        cellid = (i + 2000) * 10_000 + (j + 5000)
        return CellTower(cellid, i * self.grid_deg, j * self.grid_deg)

    def locate(self, cellid: int) -> "tuple[float, float]":
        """OpenCellID lookup: cellid → tower location."""
        i = cellid // 10_000 - 2000
        j = cellid % 10_000 - 5000
        return i * self.grid_deg, j * self.grid_deg

    def quantization_error_km(self, lat: float, lon: float) -> float:
        """Distance between a true location and its cellid-derived one."""
        tower = self.serving_cell(lat, lon)
        return great_circle_km(lat, lon, tower.lat, tower.lon)


def signal_available(lat: float, lon: float, geography: Geography,
                     max_km: float = 140.0) -> bool:
    """Whether a phone in a truck gets usable signal at a location.

    Coverage follows population: far from every metro (rural interstate
    stretches, §7.1.1's uninhabited areas) the in-vehicle signal is too
    weak for a traceroute round.
    """
    nearest = geography.nearest(lat, lon, 1)[0]
    dist = great_circle_km(lat, lon, nearest.lat, nearest.lon)
    # Larger metros radiate farther coverage.
    return dist <= max_km * (0.45 + 0.11 * nearest.weight)
