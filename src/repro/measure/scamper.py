"""A scamper-like prober façade (§7.1.2).

Bundles the traceroute engine with the phone energy model so callers
can run a measurement round in either of two modes:

* ``sequential`` — off-the-shelf scamper: one hop outstanding at a
  time, paying the full timeout for each unresponsive hop;
* ``parallel`` — the ShipTraceroute modification: probes to several
  consecutive hops in flight at once, which shortens radio-active time
  and cuts round energy by ~38 % (Fig 14).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.energy.model import EnergyTrace, PhoneEnergyModel
from repro.errors import MeasurementError
from repro.measure.traceroute import TraceResult, Tracerouter
from repro.net.network import Network
from repro.net.router import Router


@dataclass
class ScamperRound:
    """One measurement round: traces plus the energy spent on them."""

    traces: "list[TraceResult]"
    energy: EnergyTrace
    mode: str

    @property
    def energy_mah(self) -> float:
        return self.energy.total_mah


class Scamper:
    """The prober: traceroute rounds with energy accounting."""

    def __init__(
        self,
        network: "Network | None" = None,
        energy_model: "PhoneEnergyModel | None" = None,
        mode: str = "parallel",
    ) -> None:
        if mode not in ("parallel", "sequential"):
            raise MeasurementError(f"unknown scamper mode {mode!r}")
        self.network = network
        self.tracer = Tracerouter(network) if network is not None else None
        self.energy_model = energy_model or PhoneEnergyModel()
        self.mode = mode

    def round_energy(self, n_targets: int, seed: int = 0,
                     include_wake: bool = True) -> EnergyTrace:
        """Energy for a round of *n_targets* traceroutes in this mode."""
        return self.energy_model.traceroute_round(
            n_targets,
            parallel=(self.mode == "parallel"),
            rng=random.Random(f"scamper|{self.mode}|{seed}"),
            include_wake=include_wake,
        )

    def run_round(self, src: Router, targets: "list[str]",
                  src_address: "str | None" = None, seed: int = 0) -> ScamperRound:
        """Run the traceroutes and account the round's energy."""
        if self.tracer is None:
            raise MeasurementError("this Scamper was built without a network")
        traces = self.tracer.trace_many(src, targets, src_address=src_address)
        energy = self.round_energy(len(targets), seed=seed)
        return ScamperRound(traces=traces, energy=energy, mode=self.mode)
