"""Substrate factories for process-sharded campaign workers.

A supervised worker runs in a *spawned* process: it shares no memory
with the supervisor, so it must rebuild its own measurement substrate
— network, vantage points, tracer — from a picklable description.
Because every substrate in this repo is a pure function of its seed
and build flags, that description is just ``(factory, kwargs)``:
a :class:`WorkerSpec` names a module-level factory by dotted path and
carries its keyword arguments, and the worker resolves and calls it
after the spawn.

Factories return ``(tracer, vps_by_name)``: a
:class:`~repro.measure.traceroute.Tracerouter` over a freshly built
network, plus every vantage point the campaign's jobs may reference,
keyed by name.  The supervisor overrides the tracer's probe parameters
(max_ttl, attempts, backoff) with the canonical run's values, so a
factory never needs to replicate campaign configuration.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field

from repro.errors import MeasurementError


@dataclass(frozen=True)
class WorkerSpec:
    """A picklable recipe for rebuilding a substrate in a worker.

    ``factory`` is ``"module.path:callable"``; ``kwargs`` must be
    picklable (they cross the spawn boundary).  Resolution is validated
    eagerly so a typo fails in the supervisor, not in a dead worker.
    """

    factory: str
    kwargs: "dict[str, object]" = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.resolve()

    def resolve(self):
        module_name, sep, func_name = self.factory.partition(":")
        if not sep or not module_name or not func_name:
            raise MeasurementError(
                f"worker factory {self.factory!r} is not 'module:callable'"
            )
        try:
            module = importlib.import_module(module_name)
        except ImportError as exc:
            raise MeasurementError(
                f"worker factory module {module_name!r} not importable: {exc}"
            ) from exc
        func = getattr(module, func_name, None)
        if not callable(func):
            raise MeasurementError(
                f"worker factory {self.factory!r} does not name a callable"
            )
        return func

    def build(self):
        """Build the substrate: returns ``(tracer, vps_by_name)``."""
        return self.resolve()(**self.kwargs)


# ----------------------------------------------------------------------
# Factories
# ----------------------------------------------------------------------
def toy_network():
    """The 6-router diamond with a routed customer prefix.

    ::

        src --- a --- b1 --- dst  (b1/b2 equal-cost: metric 1 each)
                  \\-- b2 --/
        dst owns 198.18.5.0/24 via a prefix route.

    The unit-test substrate (the ``toy_network`` fixture delegates
    here) and the chaos-smoke substrate: big enough to exercise every
    execution path, small enough that a worker rebuilds it in
    microseconds.
    """
    from repro.net.network import Network
    from repro.net.router import Router

    net = Network()
    routers = {}
    for uid in ("src", "a", "b1", "b2", "dst"):
        routers[uid] = net.add_router(Router(uid))
    net.connect(routers["src"], routers["a"], "10.0.0.1", "10.0.0.2",
                prefixlen=30, length_km=10)
    net.connect(routers["a"], routers["b1"], "10.0.0.5", "10.0.0.6",
                prefixlen=30, length_km=10, metric=1.0)
    net.connect(routers["a"], routers["b2"], "10.0.0.9", "10.0.0.10",
                prefixlen=30, length_km=10, metric=1.0)
    net.connect(routers["b1"], routers["dst"], "10.0.0.13", "10.0.0.14",
                prefixlen=30, length_km=10, metric=1.0)
    net.connect(routers["b2"], routers["dst"], "10.0.0.17", "10.0.0.18",
                prefixlen=30, length_km=10, metric=1.0)
    net.add_prefix_route("198.18.5.0/24", routers["dst"])
    return net, routers


def toy_substrate(hosts: int = 3):
    """Diamond network plus *hosts* probe VPs hanging off router ``a``."""
    from repro.measure.traceroute import Tracerouter
    from repro.measure.vantage import VantagePoint, attach_host

    net, routers = toy_network()
    vps = {}
    for index in range(hosts):
        host, addr = attach_host(
            net, routers["a"], f"probe{index}", f"10.9.{index}.0/30"
        )
        vp = VantagePoint(f"vp{index}", "transit", host, addr)
        vps[vp.name] = vp
    return Tracerouter(net), vps


def cable_substrate(seed: int = 0, include_cable: bool = True,
                    include_telco: bool = True, include_mobile: bool = True):
    """The full simulated internet with the standard 47-VP fleet.

    Build flags must match the supervisor-side build exactly — the
    substrate is deterministic in (seed, flags), and any divergence
    would break the byte-identical-to-serial guarantee.
    """
    from repro.measure.traceroute import Tracerouter
    from repro.topology.internet import SimulatedInternet

    internet = SimulatedInternet(
        seed=seed, include_cable=include_cable, include_telco=include_telco,
        include_mobile=include_mobile,
    )
    vps = {vp.name: vp for vp in internet.build_standard_vps()}
    return Tracerouter(internet.network), vps
