"""McTraceroute: public-WiFi hotspot vantage points (§6.1).

Fast-food chains buy last-mile service for their free WiFi at many
geographically scattered locations, so their hotspots are cheap
internal vantage points behind many different EdgeCOs.  The campaign
driver places restaurant sites around a region, determines which ones
the target ISP serves, attaches a measurement host behind the serving
EdgeCO's last-mile device, and runs traceroute sweeps from each.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.errors import CheckpointError, MeasurementError
from repro.io.checkpoint import CampaignCheckpoint
from repro.measure.runner import CampaignHealth, CampaignRunner
from repro.measure.traceroute import TraceResult, Tracerouter
from repro.measure.vantage import VantagePoint, attach_host
from repro.net.network import Network
from repro.net.router import Router
from repro.topology.co import CentralOffice, Region
from repro.topology.geography import Geography, great_circle_km


@dataclass
class Hotspot:
    """One restaurant's WiFi: its location and (maybe) a usable VP."""

    name: str
    lat: float
    lon: float
    #: ISP serving the restaurant's last-mile link.
    isp_name: str
    vp: Optional[VantagePoint] = None

    @property
    def on_target_isp(self) -> bool:
        return self.vp is not None


class McTracerouteCampaign:
    """Wardriving a region's restaurant WiFi for internal VPs."""

    def __init__(
        self,
        network: Network,
        telco,
        geography: "Geography | None" = None,
        seed: int = 0,
        target_share: float = 0.4,
    ) -> None:
        self.network = network
        self.telco = telco
        self.geography = geography or telco.geography
        self.rng = random.Random(f"mctraceroute|{seed}")
        #: Fraction of restaurants whose WiFi rides the target ISP
        #: (23 of 58 San Diego McDonald's used AT&T, §6.1).
        self.target_share = target_share
        self.hotspots: "list[Hotspot]" = []
        #: Health report of the most recent :meth:`sweep`.
        self.last_health: "CampaignHealth | None" = None

    # ------------------------------------------------------------------
    def _dslam_for_co(self, co: CentralOffice) -> "Optional[Router]":
        for router in self.network.routers.values():
            if router.co is co and router.role == "dslam":
                return router
        return None

    def place_hotspots(self, region: Region, count: int = 58) -> "list[Hotspot]":
        """Scatter *count* restaurant sites across the region's metros.

        Restaurants cluster where people are: sites are scattered
        around EdgeCO neighbourhoods, and each site's WiFi is served by
        the ISP with probability ``target_share`` (else a competitor,
        unusable for this campaign).
        """
        edge_cos = region.edge_cos
        if not edge_cos:
            raise MeasurementError(f"region {region.name} has no EdgeCOs")
        self.hotspots = []
        for index in range(count):
            anchor = edge_cos[index % len(edge_cos)]
            lat, lon = self.geography.scatter(anchor.city, self.rng, radius_km=6.0)
            on_target = self.rng.random() < self.target_share
            hotspot = Hotspot(
                name=f"mcd-{region.name}-{index:02d}",
                lat=lat,
                lon=lon,
                isp_name=self.telco.name if on_target else "competitor",
            )
            if on_target:
                serving_co = min(
                    edge_cos,
                    key=lambda co: great_circle_km(lat, lon, co.lat, co.lon),
                )
                dslam = self._dslam_for_co(serving_co)
                if dslam is not None:
                    subnet = self.telco.vp_subnet_for(dslam)
                    host, addr = attach_host(
                        self.network, dslam, hotspot.name, subnet,
                        extra_delay_ms=3.0,
                    )
                    hotspot.vp = VantagePoint(
                        hotspot.name, "wifi", host, addr, serving_co.city
                    )
            self.hotspots.append(hotspot)
        return self.hotspots

    def usable_vps(self) -> "list[VantagePoint]":
        """The hotspots that turned out to be on the target ISP."""
        return [h.vp for h in self.hotspots if h.vp is not None]

    def sweep(
        self,
        targets: "list[str]",
        attempts: int = 1,
        checkpoint_path=None,
        resume: bool = False,
        min_vps: int = 1,
    ) -> "list[TraceResult]":
        """Traceroute from every usable hotspot to every target.

        Hotspot fleets are the flakiest VPs in the paper (the venue can
        kick the prober at any time), so the sweep runs through
        :class:`CampaignRunner`: per-hop retries, failover to a
        surviving hotspot, and checkpoint/resume.  The health report of
        the latest sweep is kept on ``self.last_health``.
        """
        tracer = Tracerouter(self.network, attempts=attempts)
        vps = self.usable_vps()
        runner = None
        if checkpoint_path is not None and resume:
            try:
                loaded = CampaignCheckpoint.load(checkpoint_path)
            except CheckpointError:
                pass  # nothing to resume: start fresh below
            else:
                runner = CampaignRunner.resumed(
                    tracer, vps, loaded, min_vps=min_vps
                )
        if runner is None:
            checkpoint = (
                CampaignCheckpoint(checkpoint_path)
                if checkpoint_path is not None
                else None
            )
            runner = CampaignRunner(
                tracer, vps, checkpoint=checkpoint, min_vps=min_vps
            )
        self.last_health = runner.health
        return runner.run(
            [(vp, target) for vp in vps for target in targets],
            stage="mctraceroute",
        )

    # ------------------------------------------------------------------
    @staticmethod
    def distinct_ip_paths(traces: "list[TraceResult]", skip_hops: int = 1) -> "set[tuple[str, ...]]":
        """Distinct IP paths, ignoring the first *skip_hops* hops.

        §6.1 compares path counts "starting with the second hop" so the
        per-VP access links don't inflate the numbers.
        """
        paths = set()
        for trace in traces:
            addresses = tuple(trace.responsive_addresses()[skip_hops:])
            if addresses:
                paths.add(addresses)
        return paths
