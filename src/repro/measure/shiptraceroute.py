"""ShipTraceroute: parcel-based mobile measurement (§7.1).

Three phones (one per carrier) ride ground shipments between U.S.
metros.  Once an hour each phone exits airplane mode (forcing a fresh
packet-core registration — this is what cycles the PGW bits), logs its
serving cellid, runs a round of traceroutes, and measures latency to
the San Diego measurement server.  Signal inside the truck is not
always sufficient; rural stretches produce failed rounds at roughly the
paper's observed rates (82 % AT&T / 84 % Verizon / 75 % T-Mobile).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import MeasurementError
from repro.measure.cellular import CellDatabase, signal_available
from repro.measure.runner import CampaignHealth
from repro.measure.traceroute import TraceResult
from repro.topology.geography import City, Geography, great_circle_km
from repro.topology.mobile import MobileAttachment, MobileCarrier

#: Average truck progress, km per hour of transit.
TRUCK_KM_PER_H = 75.0
#: Hours parked at a sorting hub mid-shipment.
HUB_DWELL_H = 12

#: Per-carrier rural coverage multiplier (T-Mobile's sparser rural
#: footprint is what drives its lower round success rate).
CARRIER_COVERAGE_KM = {"att-mobile": 310.0, "verizon": 350.0, "tmobile": 250.0}

#: The 12 shipment legs of the national campaign (Fig 15).
DEFAULT_ITINERARY = [
    ("San Diego", "CA", "Phoenix", "AZ"),
    ("Phoenix", "AZ", "Seattle", "WA"),
    ("Seattle", "WA", "Fargo", "ND"),
    ("Fargo", "ND", "Boston", "MA"),
    ("Boston", "MA", "Washington", "DC"),
    ("Washington", "DC", "Charleston", "SC"),
    ("Charleston", "SC", "Miami", "FL"),
    ("Miami", "FL", "Little Rock", "AR"),
    ("Little Rock", "AR", "Albuquerque", "NM"),
    ("Albuquerque", "NM", "Wichita", "KS"),
    ("Wichita", "KS", "Minneapolis", "MN"),
    ("Minneapolis", "MN", "San Diego", "CA"),
]


@dataclass
class ShipRound:
    """One hourly measurement attempt during a shipment."""

    hour: int
    lat: float
    lon: float
    state: str
    success: bool
    cellid: Optional[int] = None
    attachment: Optional[MobileAttachment] = None
    trace: Optional[TraceResult] = None
    min_rtt_to_server_ms: Optional[float] = None


@dataclass
class ShipCampaignResult:
    """Everything one phone collected across the itinerary."""

    carrier_name: str
    rounds: "list[ShipRound]" = field(default_factory=list)
    #: Cost/loss accounting for this phone's campaign.
    health: "CampaignHealth | None" = None

    @property
    def attempted(self) -> int:
        return len(self.rounds)

    @property
    def succeeded(self) -> int:
        return sum(1 for r in self.rounds if r.success)

    @property
    def success_rate(self) -> float:
        return self.succeeded / self.attempted if self.attempted else 0.0

    def states_covered(self) -> "set[str]":
        return {r.state for r in self.rounds}

    def successful_rounds(self) -> "list[ShipRound]":
        return [r for r in self.rounds if r.success]


class ShipTracerouteCampaign:
    """Drives the phones along the itinerary and collects rounds."""

    def __init__(
        self,
        carriers: "dict[str, MobileCarrier]",
        geography: "Geography | None" = None,
        server_city: "City | None" = None,
        seed: int = 0,
        attempts: int = 1,
        faults=None,
    ) -> None:
        if not carriers:
            raise MeasurementError("campaign needs at least one carrier phone")
        self.carriers = carriers
        #: Per-round retry budget: a phone that wakes to no signal
        #: waits a minute and tries again (up to ``attempts`` times).
        self.attempts = max(1, attempts)
        #: Optional :class:`~repro.faults.FaultPlan` whose ``vp_flap``
        #: knocks out extra rounds (the modem crashed on wake).
        self.faults = faults
        self.geography = geography or Geography()
        self.server_city = server_city or self.geography.city("San Diego", "CA")
        self.celldb = CellDatabase()
        self.seed = seed
        # App. D target selection: one destination per neighbour AS,
        # reduced to a single destination per carrier after the §7.1.1
        # pilot showed identical in-carrier paths.
        from repro.topology.asrel import CARRIER_ASNS, AsRelationshipDataset

        dataset = AsRelationshipDataset(seed=seed)
        self.targets = {
            name: dataset.targets_for(name)[0][0]
            for name in carriers
            if name in CARRIER_ASNS
        }

    # -- route geometry ------------------------------------------------------
    def leg_waypoints(self, origin: "tuple[str, str]", dest: "tuple[str, str]") -> "list[City]":
        """Truck waypoints for one leg: the largest metro of each state
        along the land route."""
        origin_city = self.geography.city(*origin)
        dest_city = self.geography.city(*dest)
        states = self.geography.shipping_route(origin_city.state, dest_city.state)
        waypoints = [origin_city]
        for state in states[1:-1]:
            waypoints.append(self.geography.cities_in(state)[0])
        waypoints.append(dest_city)
        return waypoints

    def hourly_positions(self, waypoints: "list[City]") -> "list[tuple[float, float, str]]":
        """(lat, lon, state) at each transit hour, with a hub dwell."""
        positions: "list[tuple[float, float, str]]" = []
        for a, b in zip(waypoints, waypoints[1:]):
            dist = great_circle_km(a.lat, a.lon, b.lat, b.lon)
            hours = max(1, round(dist / TRUCK_KM_PER_H))
            for step in range(hours):
                frac = step / hours
                lat = a.lat + (b.lat - a.lat) * frac
                lon = a.lon + (b.lon - a.lon) * frac
                state = self.geography.nearest(lat, lon, 1)[0].state
                positions.append((lat, lon, state))
        if positions:
            mid = len(positions) // 2
            positions[mid:mid] = [positions[mid]] * HUB_DWELL_H
        final = waypoints[-1]
        positions.append((final.lat, final.lon, final.state))
        return positions

    def _round_usable(self, carrier: MobileCarrier, rng: random.Random,
                      hour: int, lat: float, lon: float, coverage_km: float,
                      health: CampaignHealth) -> bool:
        """Whether the hour's measurement round gets signal.

        Attempt 0 reproduces the historical draw exactly (including the
        short-circuit that skips the fade draw outside coverage — the
        shared ``rng`` stream must not shift).  Retries draw from
        per-round keyed streams so the outcome is independent of how
        other rounds went, and injected modem flaps
        (``FaultPlan.vp_flap``) can be retried away the same way.
        """
        in_coverage = signal_available(
            lat, lon, self.geography, max_km=coverage_km
        )
        for attempt in range(self.attempts):
            if attempt == 0:
                faded = in_coverage and rng.random() <= 0.06
            else:
                health.vp_flap_retries += 1
                faded = in_coverage and random.Random(
                    f"ship-retry|{self.seed}|{carrier.name}|{hour}|{attempt}"
                ).random() <= 0.06
            flapped = self.faults is not None and self.faults.vp_flapped(
                carrier.name, ("ship", hour, attempt)
            )
            if in_coverage and not faded and not flapped:
                return True
            if not in_coverage:
                # Parked in a dead zone: waiting a minute changes nothing.
                return False
        return False

    # -- the campaign ---------------------------------------------------
    def run_phone(self, carrier: MobileCarrier,
                  itinerary: "list[tuple[str, str, str, str]] | None" = None,
                  rtt_samples: int = 4) -> ShipCampaignResult:
        """Ship one phone along the itinerary."""
        legs = itinerary or DEFAULT_ITINERARY
        rng = random.Random(f"ship|{carrier.name}|{self.seed}")
        health = CampaignHealth()
        result = ShipCampaignResult(carrier.name, health=health)
        coverage_km = CARRIER_COVERAGE_KM.get(carrier.name, 140.0)
        hour = 0
        for origin_city, origin_state, dest_city, dest_state in legs:
            waypoints = self.leg_waypoints(
                (origin_city, origin_state), (dest_city, dest_state)
            )
            for lat, lon, state in self.hourly_positions(waypoints):
                hour += 1
                # In-truck fading: a bit of randomness on top of the
                # coverage geometry.
                usable = self._round_usable(
                    carrier, rng, hour, lat, lon, coverage_km, health
                )
                if not usable:
                    result.rounds.append(
                        ShipRound(hour, lat, lon, state, success=False)
                    )
                    continue
                health.traces_run += 1
                cell = self.celldb.serving_cell(lat, lon)
                # Exit airplane mode -> fresh attachment (PGW may cycle).
                attachment = carrier.attach(cell.lat, cell.lon)
                destination = self.targets.get(carrier.name, "203.0.113.1")
                trace = carrier.traceroute(
                    attachment, destination, dst_city=self.server_city
                )
                rtts = [
                    carrier.path_rtt_ms(attachment, self.server_city)
                    + rng.uniform(0.0, 12.0)
                    for _ in range(rtt_samples)
                ]
                result.rounds.append(
                    ShipRound(
                        hour, lat, lon, state, success=True,
                        cellid=cell.cellid, attachment=attachment,
                        trace=trace, min_rtt_to_server_ms=round(min(rtts), 3),
                    )
                )
        return result

    def run(self, itinerary: "list[tuple[str, str, str, str]] | None" = None) -> "dict[str, ShipCampaignResult]":
        """Ship all three phones; return per-carrier results."""
        return {
            name: self.run_phone(carrier, itinerary)
            for name, carrier in sorted(self.carriers.items())
        }
