"""ICMP paris-traceroute engine.

Implements the probing behaviour the paper's methodology depends on:

* hop-by-hop TTL probing with per-flow path pinning (paris-traceroute
  keeps the flow identifier constant so ECMP does not corrupt a single
  trace, while different flow ids may take different equal-cost paths);
* reply-address selection by the responding router's policy (usually
  the inbound interface — the property Appendix B.1's /30-peer
  heuristic relies on);
* MPLS visibility filtering (tunnels hide interior hops unless the
  destination triggers Direct Path Revelation);
* silent hops ("*") for routers whose policy refuses the probe;
* RTT computation from path geometry plus a small deterministic jitter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.addresses import parse_ip
from repro.net.network import Network
from repro.net.router import Router, _stable_hash


@dataclass(frozen=True)
class Hop:
    """One traceroute hop: address (None for ``*``), rdns, rtt, reply TTL."""

    index: int
    address: Optional[str]
    rdns: Optional[str] = None
    rtt_ms: Optional[float] = None
    reply_ttl: Optional[int] = None

    @property
    def responded(self) -> bool:
        return self.address is not None


@dataclass
class TraceResult:
    """A complete traceroute: source, destination, and the hop list."""

    src_address: str
    dst_address: str
    hops: "list[Hop]"
    #: True when the destination itself answered the final probe.
    completed: bool = False
    flow_id: int = 0
    #: Free-form annotation set by campaign drivers (e.g. VP name).
    vp_name: str = ""

    def responsive_addresses(self) -> "list[str]":
        """The addresses that replied, in path order."""
        return [hop.address for hop in self.hops if hop.address is not None]

    def adjacent_pairs(self, exclude_final_echo: bool = False) -> "list[tuple[str, str]]":
        """Pairs of addresses at immediately consecutive responding hops.

        Pairs across a silent ("*") hop are *not* immediate and are
        excluded, exactly as the paper's adjacency extraction does.

        ``exclude_final_echo`` drops the pair ending at the destination
        of a completed trace: an echo reply carries the *probed*
        address, not an inbound-interface address, so heuristics built
        on the inbound-interface assumption (the point-to-point peer
        vote of Appendix B.1) must not consume it.
        """
        pairs = []
        last_index = self.hops[-1].index if self.hops else -1
        for first, second in zip(self.hops, self.hops[1:]):
            if first.address is None or second.address is None:
                continue
            if (
                exclude_final_echo
                and self.completed
                and second.index == last_index
            ):
                continue
            pairs.append((first.address, second.address))
        return pairs


class Tracerouter:
    """Traceroute campaigns against a :class:`Network`."""

    def __init__(self, network: Network, max_ttl: int = 32, jitter_ms: float = 0.05) -> None:
        self.network = network
        self.max_ttl = max_ttl
        self.jitter_ms = jitter_ms
        #: Count of traceroutes run (campaign bookkeeping / benchmarks).
        self.probes_sent = 0

    def _rtt(self, src: Router, hop_router: Router, one_way_ms: float, probe_key: object) -> float:
        """Round-trip time with deterministic per-probe jitter."""
        jitter = (_stable_hash("rtt", probe_key) % 1000) / 1000.0 * self.jitter_ms
        return 2.0 * one_way_ms + 0.1 + jitter

    def trace(
        self,
        src: Router,
        dst_address: str,
        flow_id: int = 0,
        src_address: "str | None" = None,
    ) -> TraceResult:
        """Run one traceroute from *src* toward *dst_address*."""
        self.probes_sent += 1
        source_addr = src_address or (
            str(src.interfaces[0].address) if src.interfaces else "0.0.0.0"
        )
        result = TraceResult(source_addr, str(parse_ip(dst_address)), hops=[], flow_id=flow_id)
        dst_router, dst_exists = self.network.route_target(dst_address)
        if dst_router is None:
            return result

        # Paris-traceroute semantics: the flow key (source, flow id) is
        # constant for the whole trace, so ECMP cannot corrupt it, while
        # different VPs and flow ids explore different equal-cost paths.
        flow_key = f"{source_addr}|{flow_id}"
        path = self.network.forwarding_path(src, dst_router, flow_id=flow_key)
        inbound = self.network.inbound_interfaces(path)
        inbound_of = {router.uid: iface for router, iface in zip(path, inbound)}
        delays = self.network.path_delays_ms(path)
        one_way = {router.uid: delay for router, delay in zip(path, delays)}
        visible = self.network.mpls.visible_path(path, dst_router)

        hop_index = 0
        for router in visible[1:]:  # skip the source itself
            is_final = router is dst_router
            hop_index += 1
            if hop_index > self.max_ttl:
                break
            probe_key = (source_addr, dst_address, flow_id, hop_index)
            if is_final:
                responds = dst_exists and router.policy.answers_echo(
                    parse_ip(source_addr), probe_key
                )
                reply_addr = str(parse_ip(dst_address)) if responds else None
            else:
                responds = router.policy.responds_to(parse_ip(source_addr), probe_key)
                reply_addr = (
                    str(router.reply_address(inbound_of.get(router.uid), dst_address))
                    if responds
                    else None
                )
            if responds:
                rtt = self._rtt(src, router, one_way[router.uid], probe_key)
                reply_ttl = router.policy.initial_ttl - (hop_index - 1)
                result.hops.append(
                    Hop(
                        index=hop_index,
                        address=reply_addr,
                        rdns=self.network.rdns.dig(reply_addr),
                        rtt_ms=round(rtt, 3),
                        reply_ttl=reply_ttl,
                    )
                )
                if is_final:
                    result.completed = True
            else:
                result.hops.append(Hop(index=hop_index, address=None))
        return result

    def trace_many(
        self,
        src: Router,
        dst_addresses,
        flow_id: int = 0,
        src_address: "str | None" = None,
    ) -> "list[TraceResult]":
        """Traceroute to every destination in *dst_addresses*."""
        return [
            self.trace(src, dst, flow_id=flow_id, src_address=src_address)
            for dst in dst_addresses
        ]
