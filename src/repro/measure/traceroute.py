"""ICMP paris-traceroute engine.

Implements the probing behaviour the paper's methodology depends on:

* hop-by-hop TTL probing with per-flow path pinning (paris-traceroute
  keeps the flow identifier constant so ECMP does not corrupt a single
  trace, while different flow ids may take different equal-cost paths);
* reply-address selection by the responding router's policy (usually
  the inbound interface — the property Appendix B.1's /30-peer
  heuristic relies on);
* MPLS visibility filtering (tunnels hide interior hops unless the
  destination triggers Direct Path Revelation);
* silent hops ("*") for routers whose policy refuses the probe;
* RTT computation from path geometry plus a small deterministic jitter.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.net.network import Network
from repro.net.router import Router, _stable_hash
from repro.perf.cache import normalize_address


@dataclass(frozen=True)
class Hop:
    """One traceroute hop: address (None for ``*``), rdns, rtt, reply TTL.

    ``attempts`` records how many probes this TTL consumed before a
    reply arrived (or before the prober gave up, for ``*`` hops).
    """

    index: int
    address: Optional[str]
    rdns: Optional[str] = None
    rtt_ms: Optional[float] = None
    reply_ttl: Optional[int] = None
    attempts: int = 1

    @property
    def responded(self) -> bool:
        return self.address is not None


@dataclass
class TraceResult:
    """A complete traceroute: source, destination, and the hop list."""

    src_address: str
    dst_address: str
    hops: "list[Hop]"
    #: True when the destination itself answered the final probe.
    completed: bool = False
    flow_id: int = 0
    #: Free-form annotation set by campaign drivers (e.g. VP name).
    vp_name: str = ""

    def responsive_addresses(self) -> "list[str]":
        """The addresses that replied, in path order."""
        return [hop.address for hop in self.hops if hop.address is not None]

    def adjacent_pairs(self, exclude_final_echo: bool = False) -> "list[tuple[str, str]]":
        """Pairs of addresses at immediately consecutive responding hops.

        Pairs across a silent ("*") hop are *not* immediate and are
        excluded, exactly as the paper's adjacency extraction does.

        ``exclude_final_echo`` drops the pair ending at the destination
        of a completed trace: an echo reply carries the *probed*
        address, not an inbound-interface address, so heuristics built
        on the inbound-interface assumption (the point-to-point peer
        vote of Appendix B.1) must not consume it.
        """
        pairs = []
        last_index = self.hops[-1].index if self.hops else -1
        for first, second in zip(self.hops, self.hops[1:]):
            if first.address is None or second.address is None:
                continue
            if (
                exclude_final_echo
                and self.completed
                and second.index == last_index
            ):
                continue
            pairs.append((first.address, second.address))
        return pairs


class Tracerouter:
    """Traceroute campaigns against a :class:`Network`.

    ``attempts`` gives scamper-style per-hop retries: each TTL is
    probed up to *attempts* times, with a deterministic exponential
    backoff (accounted in ``backoff_ms_total``) between tries.  The
    first attempt of every hop uses the same probe identity as a
    retry-free prober, so ``attempts=1`` (the default) is
    byte-identical to the historical engine.  The counters distinguish
    probes *lost* in flight (fault injection — transient) from probes
    *refused* by the responding router's policy.
    """

    def __init__(
        self,
        network: Network,
        max_ttl: int = 32,
        jitter_ms: float = 0.05,
        attempts: int = 1,
        backoff_ms: float = 0.3,
        pace_ms: float = 0.0,
    ) -> None:
        self.network = network
        self.max_ttl = max_ttl
        self.jitter_ms = jitter_ms
        self.attempts = max(1, attempts)
        self.backoff_ms = backoff_ms
        #: Real (wall-clock) inter-trace pacing, scamper-style.  Zero
        #: by default: the simulation itself is CPU-bound and instant.
        #: Set >0 to model the latency-bound regime real campaigns run
        #: in — every probe waits on an RTT and on ICMP rate limits —
        #: which is the regime where sharding measurement across worker
        #: processes pays off.  Pacing never touches the trace bytes.
        self.pace_ms = pace_ms
        #: Actual probes sent: one per TTL per attempt.
        self.probes_sent = 0
        #: Traceroutes run (the historical meaning of ``probes_sent``).
        self.traces_run = 0
        #: Probes dropped in flight by fault injection.
        self.probes_lost = 0
        #: Probes the responding router declined to answer.
        self.probes_refused = 0
        #: Probes beyond the first attempt of their TTL.
        self.probes_retried = 0
        #: Simulated time spent waiting between retries.
        self.backoff_ms_total = 0.0

    def counters(self) -> "dict[str, float]":
        """Snapshot of the campaign-cost counters."""
        return {
            "probes_sent": self.probes_sent,
            "traces_run": self.traces_run,
            "probes_lost": self.probes_lost,
            "probes_refused": self.probes_refused,
            "probes_retried": self.probes_retried,
            "backoff_ms_total": self.backoff_ms_total,
        }

    def publish_metrics(self, metrics, prefix: str = "tracer.") -> None:
        """Publish the cumulative counters as ``tracer.*`` gauges.

        The counters are process-cumulative, so gauges (last snapshot
        wins) are the honest representation; the campaign runner calls
        this at every health sync and the pipeline once more at exit.
        """
        for name, value in self.counters().items():
            metrics.set_gauge(f"{prefix}{name}", value)

    def _rtt(self, one_way_ms: float, probe_key: object) -> float:
        """Round-trip time with deterministic per-probe jitter."""
        jitter = (_stable_hash("rtt", probe_key) % 1000) / 1000.0 * self.jitter_ms
        return 2.0 * one_way_ms + 0.1 + jitter

    def trace(
        self,
        src: Router,
        dst_address: str,
        flow_id: int = 0,
        src_address: "str | None" = None,
    ) -> TraceResult:
        """Run one traceroute from *src* toward *dst_address*."""
        if self.pace_ms > 0.0:
            time.sleep(self.pace_ms / 1000.0)
        self.traces_run += 1
        faults = self.network.faults
        source_addr = src_address or (
            str(src.interfaces[0].address) if src.interfaces else "0.0.0.0"
        )
        result = TraceResult(source_addr, normalize_address(dst_address), hops=[], flow_id=flow_id)
        dst_router, dst_exists = self.network.route_target(dst_address)
        if dst_router is None:
            return result

        # Paris-traceroute semantics: the flow key (source, flow id) is
        # constant for the whole trace, so ECMP cannot corrupt it, while
        # different VPs and flow ids explore different equal-cost paths.
        flow_key = f"{source_addr}|{flow_id}"
        path = self.network.forwarding_path(src, dst_router, flow_id=flow_key)
        inbound = self.network.inbound_interfaces(path)
        inbound_of = {router.uid: iface for router, iface in zip(path, inbound)}
        delays = self.network.path_delays_ms(path)
        one_way = {router.uid: delay for router, delay in zip(path, delays)}
        down = (
            faults.down_tunnels(
                self.network.mpls.tunnels,
                (source_addr, result.dst_address, flow_id),
            )
            if faults is not None
            else frozenset()
        )
        visible = self.network.mpls.visible_path(path, dst_router, down=down)

        hop_index = 0
        for router in visible[1:]:  # skip the source itself
            is_final = router is dst_router
            hop_index += 1
            if hop_index > self.max_ttl:
                break
            base_key = (source_addr, dst_address, flow_id, hop_index)
            result.hops.append(
                self._probe_hop(
                    router, is_final, dst_exists, dst_address,
                    inbound_of.get(router.uid), one_way[router.uid],
                    source_addr, base_key, faults,
                )
            )
            if is_final and result.hops[-1].responded:
                result.completed = True
        return result

    def _probe_hop(
        self,
        router: Router,
        is_final: bool,
        dst_exists: bool,
        dst_address: str,
        inbound_iface,
        one_way_ms: float,
        source_addr: str,
        base_key: "tuple",
        faults,
    ) -> Hop:
        """Probe one TTL up to ``attempts`` times and build its hop."""
        hop_index = base_key[-1]
        for attempt in range(self.attempts):
            # Attempt 0 keeps the historical probe identity so the
            # retry-free configuration reproduces the seed exactly.
            probe_key = base_key if attempt == 0 else (*base_key, f"a{attempt}")
            self.probes_sent += 1
            if attempt:
                self.probes_retried += 1
                self.backoff_ms_total += self.backoff_ms * (2 ** (attempt - 1))
            if faults is not None and faults.probe_lost(probe_key):
                self.probes_lost += 1
                continue
            if is_final:
                responds = dst_exists and router.probe_response(
                    source_addr, probe_key, echo=True, faults=faults
                )
                reply_addr = normalize_address(dst_address) if responds else None
            else:
                responds = router.probe_response(
                    source_addr, probe_key, faults=faults
                )
                reply_addr = (
                    str(router.reply_address(inbound_iface, dst_address))
                    if responds
                    else None
                )
            if not responds:
                self.probes_refused += 1
                continue
            rtt = self._rtt(one_way_ms, probe_key)
            return Hop(
                index=hop_index,
                address=reply_addr,
                rdns=self.network.rdns.dig(reply_addr, fault_key=probe_key),
                rtt_ms=round(rtt, 3),
                reply_ttl=router.policy.initial_ttl - (hop_index - 1),
                attempts=attempt + 1,
            )
        return Hop(index=hop_index, address=None, attempts=self.attempts)

    def trace_many(
        self,
        src: Router,
        dst_addresses,
        flow_id: int = 0,
        src_address: "str | None" = None,
    ) -> "list[TraceResult]":
        """Traceroute to every destination in *dst_addresses*."""
        return [
            self.trace(src, dst, flow_id=flow_id, src_address=src_address)
            for dst in dst_addresses
        ]
