"""Echo probing: ping and the TTL-limited echo trick.

§6.3 of the paper measures latency to AT&T EdgeCO devices that refuse
direct pings from outside the ISP by sending an ICMP Echo whose TTL
expires at the penultimate hop — the device then emits a time-exceeded
message that reveals its RTT.  :meth:`Pinger.ttl_limited_ping`
implements that trick.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.addresses import parse_ip
from repro.net.network import Network
from repro.net.router import Router, _stable_hash


@dataclass(frozen=True)
class PingResult:
    """Outcome of an echo campaign toward one address."""

    dst_address: str
    sent: int
    received: int
    min_rtt_ms: Optional[float]
    median_rtt_ms: Optional[float]

    @property
    def responded(self) -> bool:
        return self.received > 0


class Pinger:
    """Ping campaigns against a :class:`Network`."""

    def __init__(self, network: Network, jitter_ms: float = 0.3) -> None:
        self.network = network
        self.jitter_ms = jitter_ms

    def _rtts(self, base_ms: float, count: int, key: object) -> "list[float]":
        """*count* RTT samples: base plus non-negative queueing jitter."""
        samples = []
        for i in range(count):
            jitter = (_stable_hash("ping", key, i) % 1000) / 1000.0 * self.jitter_ms
            samples.append(round(2.0 * base_ms + 0.1 + jitter, 3))
        return samples

    def ping(self, src: Router, dst_address: str, count: int = 100,
             src_address: "str | None" = None) -> PingResult:
        """Direct echo probes to *dst_address*."""
        source = src_address or (
            str(src.interfaces[0].address) if src.interfaces else "0.0.0.0"
        )
        dst = str(parse_ip(dst_address))
        dst_router, exists = self.network.route_target(dst)
        key = (source, dst, "echo")
        if (
            dst_router is None
            or not exists
            or not dst_router.policy.answers_echo(parse_ip(source), key)
        ):
            return PingResult(dst, count, 0, None, None)
        base = self.network.path_delay_ms(src, dst_router, flow_id=f"{source}|0")
        samples = sorted(self._rtts(base, count, key))
        return PingResult(
            dst, count, count, samples[0], samples[len(samples) // 2]
        )

    def ttl_limited_ping(
        self, src: Router, dst_address: str, ttl: int, count: int = 100,
        src_address: "str | None" = None,
    ) -> PingResult:
        """Echo probes with a fixed TTL that expires mid-path (§6.3).

        The reply comes from the router at the *ttl*-th visible hop, so
        the RTT measures the distance to that hop, not the destination.
        TTL-expiry replies ignore ``echo_internal_only`` filtering.
        """
        source = src_address or (
            str(src.interfaces[0].address) if src.interfaces else "0.0.0.0"
        )
        dst = str(parse_ip(dst_address))
        dst_router, _exists = self.network.route_target(dst)
        if dst_router is None:
            return PingResult(dst, count, 0, None, None)
        path = self.network.forwarding_path(src, dst_router, flow_id=f"{source}|0")
        delays = dict(zip(path, self.network.path_delays_ms(path)))
        visible = self.network.mpls.visible_path(path, dst_router)
        hops_past_src = visible[1:]
        if ttl < 1 or ttl > len(hops_past_src):
            return PingResult(dst, count, 0, None, None)
        expiring_router = hops_past_src[ttl - 1]
        key = (source, dst, "ttl", ttl)
        if expiring_router is dst_router or not expiring_router.policy.responds_to(
            parse_ip(source), key
        ):
            return PingResult(dst, count, 0, None, None)
        base = delays[expiring_router]
        samples = sorted(self._rtts(base, count, key))
        return PingResult(
            dst, count, count, samples[0], samples[len(samples) // 2]
        )
