"""Resilient campaign execution: retry, failover, checkpoint, degrade.

The measurement drivers used to assume a well-behaved fleet: every VP
survives the whole sweep and every probe either answers or is a clean
``*``.  The paper's campaigns had neither luxury (§6.1's hotspots
kicked the prober mid-sweep; §7.1.1's phones lost signal for hours).
:class:`CampaignRunner` is the execution layer that absorbs those
failures:

* **retry** — per-hop probe retries live in the
  :class:`~repro.measure.traceroute.Tracerouter`; the runner adds
  trace-level retries when a VP flaps;
* **failover** — when a VP dies, its remaining jobs are reassigned to
  deterministic surviving stand-ins;
* **checkpoint/resume** — completed traces are persisted periodically
  via :class:`~repro.io.checkpoint.CampaignCheckpoint`; a resumed
  campaign skips finished work and, because all fault decisions are
  keyed on event identity, converges on the same final corpus as an
  uninterrupted run;
* **graceful degradation** — when the surviving fleet falls below
  ``min_vps`` the campaign returns the partial corpus plus an honest
  :class:`CampaignHealth` report instead of raising.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CampaignInterrupted
from repro.measure.traceroute import TraceResult, Tracerouter
from repro.measure.vantage import FleetView, VantagePoint


@dataclass
class CampaignHealth:
    """What a campaign actually cost and what it lost.

    ``empty_traces`` counts traces that returned zero hops — work that
    the drivers used to discard silently, making coverage loss
    invisible.  ``degraded`` means the campaign ran out of fleet and
    returned a partial corpus.
    """

    probes_sent: int = 0
    probes_lost: int = 0
    probes_refused: int = 0
    probes_retried: int = 0
    backoff_ms_total: float = 0.0
    traces_run: int = 0
    empty_traces: int = 0
    vps_lost: "list[str]" = field(default_factory=list)
    vp_flap_retries: int = 0
    targets_reassigned: int = 0
    targets_skipped: int = 0
    resumed: bool = False
    interrupted: bool = False
    degraded: bool = False
    #: Supervised shard-executor accounting (all zero for in-process
    #: runners).  ``shards_poisoned`` shards exhausted their retries
    #: and were quarantined; their jobs show up in ``targets_skipped``.
    shards_planned: int = 0
    shards_reused: int = 0
    shards_retried: int = 0
    shards_poisoned: int = 0
    workers_spawned: int = 0
    workers_crashed: int = 0
    workers_stalled: int = 0
    workers_slow: int = 0
    fault_stats: "dict[str, object]" = field(default_factory=dict)

    def as_dict(self) -> "dict[str, object]":
        return {
            "probes_sent": self.probes_sent,
            "probes_lost": self.probes_lost,
            "probes_refused": self.probes_refused,
            "probes_retried": self.probes_retried,
            "backoff_ms_total": round(self.backoff_ms_total, 3),
            "traces_run": self.traces_run,
            "empty_traces": self.empty_traces,
            "vps_lost": list(self.vps_lost),
            "vp_flap_retries": self.vp_flap_retries,
            "targets_reassigned": self.targets_reassigned,
            "targets_skipped": self.targets_skipped,
            "resumed": self.resumed,
            "interrupted": self.interrupted,
            "degraded": self.degraded,
            "shards_planned": self.shards_planned,
            "shards_reused": self.shards_reused,
            "shards_retried": self.shards_retried,
            "shards_poisoned": self.shards_poisoned,
            "workers_spawned": self.workers_spawned,
            "workers_crashed": self.workers_crashed,
            "workers_stalled": self.workers_stalled,
            "workers_slow": self.workers_slow,
            "fault_stats": dict(self.fault_stats),
        }

    @classmethod
    def from_dict(cls, payload: "dict[str, object]") -> "CampaignHealth":
        health = cls()
        for key, value in payload.items():
            if hasattr(health, key):
                setattr(health, key, value)
        return health

    def publish_metrics(self, metrics, prefix: str = "campaign.") -> None:
        """Publish the health fields as ``campaign.*`` gauges.

        Numeric fields map one-to-one; booleans become 0/1 and the
        lost-VP list becomes its length, so every gauge is a scalar
        and the registry snapshot stays diffable.  Fault stats are
        published by :meth:`FaultStats.publish_metrics` instead.
        """
        for name, value in self.as_dict().items():
            if name == "fault_stats":
                continue
            if name == "vps_lost":
                metrics.set_gauge(f"{prefix}vps_lost", len(value))
            elif isinstance(value, bool):
                metrics.set_gauge(f"{prefix}{name}", int(value))
            else:
                metrics.set_gauge(f"{prefix}{name}", value)

    def summary(self) -> str:
        """One human line for CLI output and logs."""
        parts = [
            f"{self.traces_run} traces / {self.probes_sent} probes",
            f"{self.probes_lost} lost",
            f"{self.probes_retried} retried",
            f"{self.empty_traces} empty",
        ]
        if self.vps_lost:
            parts.append(f"{len(self.vps_lost)} VP(s) lost: "
                         f"{', '.join(self.vps_lost)}")
        if self.targets_reassigned:
            parts.append(f"{self.targets_reassigned} jobs reassigned")
        if self.targets_skipped:
            parts.append(f"{self.targets_skipped} jobs skipped")
        if self.workers_crashed or self.workers_stalled:
            parts.append(f"{self.workers_crashed} worker crash(es), "
                         f"{self.workers_stalled} stall(s)")
        if self.shards_retried:
            parts.append(f"{self.shards_retried} shard(s) retried")
        if self.shards_poisoned:
            parts.append(f"{self.shards_poisoned} shard(s) poisoned")
        if self.degraded:
            parts.append("DEGRADED")
        if self.interrupted:
            parts.append("interrupted (checkpoint saved)")
        return "; ".join(parts)


class CampaignRunner:
    """Drives (vantage point, target) jobs through a tracer, resiliently.

    One runner serves a whole campaign; call :meth:`run` once per stage
    with that stage's job list.  All resilience is off by default in
    the sense that with no fault injector attached, ``failover`` has
    nothing to do and the runner produces byte-identical output to the
    plain nested-loop sweep it replaced.
    """

    def __init__(
        self,
        tracer: Tracerouter,
        vps: "list[VantagePoint]",
        checkpoint=None,
        min_vps: int = 1,
        failover: bool = True,
        checkpoint_every: int = 2000,
        stop_after: "int | None" = None,
        obs=None,
        metrics=None,
    ) -> None:
        self.tracer = tracer
        self.fleet = FleetView(vps)
        self.checkpoint = checkpoint
        self.min_vps = max(1, min_vps)
        self.failover = failover
        self.checkpoint_every = max(1, checkpoint_every)
        #: Observability hooks: a :class:`repro.obs.span.Tracer` that
        #: wraps every stage in a ``stage:<name>`` span, and a
        #: :class:`repro.obs.metrics.MetricsRegistry` refreshed at
        #: every health sync.  Both optional; None keeps the runner
        #: byte-identical to the uninstrumented one.
        self.obs = obs
        self.metrics = metrics
        #: Stop (checkpoint + raise CampaignInterrupted) after this many
        #: jobs, cumulative across stages.  Simulates a killed campaign
        #: in tests; None means run to completion.
        self.stop_after = stop_after
        self._executed = 0
        self.health = CampaignHealth()
        self.injector = tracer.network.faults
        if self.injector is not None:
            self.injector.register_fleet(self.fleet.names)
            # Resuming: VPs already dead in the restored injector state
            # stay dead in the fleet view.
            for name in self.fleet.names:
                if not self.injector.vp_alive(name):
                    self.fleet.mark_dead(name)

    # ------------------------------------------------------------------
    # Resume plumbing
    # ------------------------------------------------------------------
    @classmethod
    def resumed(cls, tracer, vps, checkpoint, **kwargs) -> "CampaignRunner":
        """Build a runner continuing from a loaded checkpoint."""
        injector = tracer.network.faults
        if injector is not None and checkpoint.injector_state:
            injector.restore_state(checkpoint.injector_state)
        runner = cls(tracer, vps, checkpoint=checkpoint, **kwargs)
        runner.health = CampaignHealth.from_dict(checkpoint.health)
        runner.health.resumed = True
        runner.health.interrupted = False
        return runner

    def _save_checkpoint(self, stage: str, traces, done, complete: bool) -> None:
        if self.checkpoint is None:
            return
        self.checkpoint.record_stage(stage, traces, sorted(done), complete)
        self.checkpoint.health = self.health.as_dict()
        if self.injector is not None:
            self.checkpoint.injector_state = self.injector.state_dict()
        self.checkpoint.save()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _sync_health(self) -> None:
        """Fold the tracer's cumulative counters into the health report.

        The tracer counts from zero each process; the health may have
        been restored from a checkpoint, so deltas are tracked.
        """
        counters = self.tracer.counters()
        base = getattr(self, "_counter_base", None)
        if base is None:
            base = {key: 0 for key in counters}
        delta = {key: counters[key] - base[key] for key in counters}
        self._counter_base = counters
        self.health.probes_sent += int(delta["probes_sent"])
        self.health.probes_lost += int(delta["probes_lost"])
        self.health.probes_refused += int(delta["probes_refused"])
        self.health.probes_retried += int(delta["probes_retried"])
        self.health.backoff_ms_total += delta["backoff_ms_total"]
        self.health.traces_run += int(delta["traces_run"])
        if self.injector is not None:
            self.health.fault_stats = self.injector.stats.as_dict()
        if self.metrics is not None:
            self.health.publish_metrics(self.metrics)
            self.tracer.publish_metrics(self.metrics)
            if self.injector is not None:
                self.injector.stats.publish_metrics(self.metrics)
            self.metrics.set_gauge("campaign.fleet_alive", len(self.fleet.alive()))

    def _run_trace(self, vp: VantagePoint, target: str, flow_id: int) -> TraceResult:
        """One actual traceroute — the seam execution strategies override.

        The serial runner probes synchronously; the parallel runner
        substitutes a speculatively-computed trace (replaying its probe
        counters onto this tracer) when one is available.
        """
        return self.tracer.trace(
            vp.host, target, flow_id=flow_id, src_address=vp.src_address
        )

    def _job_blocked(self, job_key: "tuple[str, str]") -> bool:
        """Whether *job_key* must be skipped outright (quarantined work).

        The serial runner blocks nothing; the supervised runner returns
        True for jobs belonging to a poisoned shard, which the stage
        loop then counts as skipped-and-degraded coverage loss.
        """
        return False

    def _execute_job(self, vp: VantagePoint, job_key, flow_id: int):
        """One traceroute from *vp*, with flap retries.

        Returns the trace, or None when the VP flapped through every
        attempt (the caller decides whether to fail over).
        """
        injector = self.injector
        for attempt in range(self.tracer.attempts):
            if injector is not None and injector.vp_flapped(
                vp.name, (*job_key, attempt)
            ):
                if attempt + 1 < self.tracer.attempts:
                    self.health.vp_flap_retries += 1
                continue
            before = self.tracer.probes_sent
            trace = self._run_trace(vp, job_key[1], flow_id)
            trace.vp_name = vp.name
            if injector is not None:
                alive = injector.vp_add_probes(
                    vp.name, self.tracer.probes_sent - before
                )
                if not alive:
                    # The VP dies *after* delivering this trace — the
                    # hotspot kicked us once the sweep was underway.
                    self.fleet.mark_dead(vp.name)
                    self.health.vps_lost.append(vp.name)
            return trace
        return None

    def run(
        self,
        jobs: "list[tuple[VantagePoint, str]]",
        stage: str = "campaign",
        flow_id: int = 0,
        keep_empty: bool = False,
    ) -> "list[TraceResult]":
        """Execute a stage's jobs; returns its (possibly partial) traces.

        Jobs are ``(vantage point, target)`` pairs, executed in order.
        Already-checkpointed jobs are skipped on resume; a stage marked
        complete in the checkpoint is returned wholesale from disk.

        With an observability tracer attached the whole stage runs
        inside a ``stage:<name>`` span recording job and trace counts;
        a stage interrupted by ``stop_after`` leaves an ``error`` span.
        """
        if self.obs is None:
            return self._run_stage(jobs, stage, flow_id, keep_empty)
        with self.obs.span(f"stage:{stage}", jobs=len(jobs)) as span:
            traces = self._run_stage(jobs, stage, flow_id, keep_empty)
            span.attributes["traces"] = len(traces)
            span.attributes["skipped"] = self.health.targets_skipped
            return traces

    def run_corpus(
        self,
        jobs: "list[tuple[VantagePoint, str]]",
        stage: str = "campaign",
        flow_id: int = 0,
        keep_empty: bool = False,
    ):
        """:meth:`run`, assembled into a columnar
        :class:`~repro.corpus.columnar.TraceCorpus`.

        This is the corpus-ingestion entry point: downstream vectorized
        inference (``extract_columnar``/``build_columnar``) consumes
        the result directly, with no per-trace object traversal in
        between.  Checkpoint/resume semantics are exactly those of
        :meth:`run`.
        """
        from repro.corpus import TraceCorpus

        traces = self.run(
            jobs, stage=stage, flow_id=flow_id, keep_empty=keep_empty
        )
        if self.obs is not None:
            with self.obs.span(f"corpus:{stage}", traces=len(traces)) as span:
                corpus = TraceCorpus.from_traces(traces)
                span.attributes["hops"] = corpus.hop_count
                span.attributes["addresses"] = len(corpus.addresses)
        else:
            corpus = TraceCorpus.from_traces(traces)
        if self.metrics is not None:
            self.metrics.inc("corpus.traces", len(corpus))
            self.metrics.inc("corpus.hops", corpus.hop_count)
            self.metrics.set_gauge(
                "corpus.interned_addresses", len(corpus.addresses)
            )
        return corpus

    def _run_stage(
        self,
        jobs: "list[tuple[VantagePoint, str]]",
        stage: str,
        flow_id: int,
        keep_empty: bool,
    ) -> "list[TraceResult]":
        if self.checkpoint is not None and self.checkpoint.stage_complete(stage):
            return self.checkpoint.stage_traces(stage)
        done: "set[tuple[str, str]]" = set()
        traces: "list[TraceResult]" = []
        if self.checkpoint is not None and self.checkpoint.stage(stage) is not None:
            done = self.checkpoint.stage_done(stage)
            traces = self.checkpoint.stage_traces(stage)
        since_save = 0
        for vp, target in jobs:
            job_key = (vp.name, target)
            if job_key in done:
                continue
            if self.stop_after is not None and self._executed >= self.stop_after:
                self._sync_health()
                self.health.interrupted = True
                self._save_checkpoint(stage, traces, done, complete=False)
                raise CampaignInterrupted(
                    f"campaign stopped after {self._executed} jobs "
                    f"(checkpoint: {getattr(self.checkpoint, 'path', None)})"
                )
            if self._job_blocked(job_key):
                self.health.targets_skipped += 1
                self.health.degraded = True
                done.add(job_key)
                continue
            executor = vp
            if not self.fleet.is_alive(vp.name):
                executor = self.fleet.stand_in(job_key) if self.failover else None
                if executor is not None:
                    self.health.targets_reassigned += 1
            if executor is None or len(self.fleet.alive()) < self.min_vps:
                self.health.targets_skipped += 1
                self.health.degraded = True
                done.add(job_key)
                continue
            trace = self._execute_job(executor, job_key, flow_id)
            if trace is None and self.failover:
                # The assigned VP flapped through every attempt; one
                # deterministic stand-in gets a chance before we skip.
                stand_in = self.fleet.stand_in((*job_key, "flap"))
                if stand_in is not None and stand_in.name != executor.name:
                    self.health.targets_reassigned += 1
                    trace = self._execute_job(stand_in, job_key, flow_id)
            if trace is None:
                self.health.targets_skipped += 1
            elif trace.hops or keep_empty:
                traces.append(trace)
            else:
                self.health.empty_traces += 1
            done.add(job_key)
            self._executed += 1
            since_save += 1
            if since_save >= self.checkpoint_every:
                self._sync_health()
                self._save_checkpoint(stage, traces, done, complete=False)
                since_save = 0
        self._sync_health()
        self._save_checkpoint(stage, traces, done, complete=True)
        return traces
