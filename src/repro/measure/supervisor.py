"""Supervised process-sharded campaign execution.

:class:`SupervisedCampaignRunner` is the crash-tolerant big sibling of
the thread-based :class:`~repro.measure.parallel.ParallelCampaignRunner`
(kept as the in-process parity oracle).  It keeps the same two-pass
speculate-then-replay architecture — which is what preserves the
byte-identical-to-serial corpus guarantee — but moves speculation into
**spawned worker processes** managed by a supervisor loop:

1. **Shard** — the stage's pending jobs are partitioned by
   :func:`repro.measure.shard.plan_shards` into contiguous,
   content-addressed shards: the unit of work, of retry, and of
   quarantine.
2. **Supervise** — a pool of ``spawn``-context workers executes shards.
   Each worker rebuilds its own substrate from a picklable
   :class:`~repro.measure.substrates.WorkerSpec` (substrates are pure
   functions of seed and flags), probes its shard's jobs, heartbeats
   between jobs, and returns serialized traces plus the per-job probe
   counter and fault-stat deltas each trace cost.  The supervisor
   enforces per-shard heartbeat liveness and a wall-clock deadline,
   kills and replaces workers that crash or stall, retries failed
   shards with exponential backoff on a fresh worker, and — after a
   shard exhausts ``max_shard_retries`` — poisons it: its jobs are
   quarantined, skipped, and reported as degraded coverage.
3. **Replay** — the inherited serial loop runs unchanged; its
   ``_run_trace`` seam consumes the speculative traces and applies
   their deltas, so checkpoints, health accounting, VP-death
   thresholds, and the final corpus match a serial run byte for byte.

Worker-level chaos (``worker_crash`` / ``worker_stall`` /
``worker_slow`` in the :class:`~repro.faults.plan.FaultPlan`) is drawn
inside the worker, keyed on ``(shard_id, attempt)`` — never on the
probe path — so a seeded chaos run is exactly reproducible and the
serial oracle's corpus is untouched by it.

Completed shards are persisted into the campaign checkpoint as they
finish, so a supervisor SIGKILLed mid-stage resumes from completed
shards only (content-addressed ids guard against partition drift).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from multiprocessing.connection import wait as _conn_wait

from repro.errors import CampaignInterrupted, MeasurementError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.measure.parallel import (
    _TRACE_FAULT_FIELDS,
    ParallelCampaignRunner,
    _Speculative,
)
from repro.measure.runner import CampaignRunner
from repro.measure.shard import Shard, plan_shards
from repro.measure.substrates import WorkerSpec
from repro.measure.traceroute import Hop, Tracerouter, TraceResult
from repro.measure.vantage import VantagePoint
from repro.validate.quarantine import QuarantineReport

#: How long a stall-injected worker sleeps: effectively forever — the
#: supervisor's heartbeat timeout is what ends it.
_STALL_SLEEP_S = 3600.0
#: How long a freshly spawned worker gets to import + build its
#: substrate and send the ready handshake before being recycled.
_BOOT_TIMEOUT_S = 60.0
#: Supervisor poll tick (seconds) while waiting for worker messages.
_POLL_TICK_S = 0.05
#: Shards queued per worker.  Depth 2 keeps a worker probing its next
#: shard while the supervisor ingests its last one; without it the two
#: sides ping-pong (worker idle during ingest, supervisor idle during
#: probing) and the pool runs no faster than serial.
_PREFETCH_DEPTH = 2


def _trace_to_wire(trace: TraceResult):
    """Flatten one traceroute to positional tuples for the pipe.

    Roughly 2x cheaper on both ends than the JSON-ready dicts of
    :func:`repro.io.checkpoint.trace_to_dict` — and the supervisor
    deserializes every trace the pool produces, so its per-trace cost
    bounds the achievable speedup.  Tuples survive a JSON round trip
    (as lists) when a completed shard is parked in the checkpoint,
    which is why :func:`_trace_from_wire` accepts any sequence.
    """
    return (
        trace.src_address, trace.dst_address, trace.completed,
        trace.flow_id, trace.vp_name,
        [(h.index, h.address, h.rdns, h.rtt_ms, h.reply_ttl, h.attempts)
         for h in trace.hops],
    )


def _trace_from_wire(payload) -> TraceResult:
    """Rebuild a traceroute from :func:`_trace_to_wire` output."""
    src, dst, completed, flow_id, vp_name, hops = payload
    return TraceResult(
        src_address=src, dst_address=dst,
        hops=[Hop(i, a, r, rtt, ttl, tries)
              for i, a, r, rtt, ttl, tries in hops],
        completed=completed, flow_id=flow_id, vp_name=vp_name,
    )


def _die_hard() -> None:
    """Terminate this process without any Python-level cleanup."""
    sigkill = getattr(signal, "SIGKILL", None)
    if sigkill is not None:
        os.kill(os.getpid(), sigkill)
    os._exit(1)


def _run_shard(conn, tracer, vps, injector, shard, attempt, heartbeat_interval):
    """Execute one shard's jobs; returns ``(results, slow)``.

    Results are ``(vp_name, target, trace_wire, tracer_delta,
    fault_delta)`` tuples in job order — exactly the payload
    :meth:`SupervisedCampaignRunner._ingest` replays.
    """
    conn.send(("start", shard.shard_id, attempt))
    plan = injector.plan if injector is not None else None
    crash_at = stall_at = None
    slow = False
    if plan is not None:
        if plan.worker_crashed(shard.shard_id, attempt):
            crash_at = plan.failure_point(
                shard.shard_id, attempt, len(shard.jobs), kind="crash"
            )
        elif plan.worker_stalled(shard.shard_id, attempt):
            stall_at = plan.failure_point(
                shard.shard_id, attempt, len(shard.jobs), kind="stall"
            )
        elif plan.worker_slowed(shard.shard_id, attempt):
            slow = True
            time.sleep(plan.worker_slow_ms / 1000.0)
    results = []
    counters_before = tracer.counters()
    faults_before = (
        {name: getattr(injector.stats, name) for name in _TRACE_FAULT_FIELDS}
        if injector is not None
        else None
    )
    last_heartbeat = time.monotonic()
    for index, (vp_name, target) in enumerate(shard.jobs):
        if crash_at is not None and index == crash_at:
            _die_hard()
        if stall_at is not None and index == stall_at:
            time.sleep(_STALL_SLEEP_S)
        vp = vps.get(vp_name)
        if vp is None:
            raise MeasurementError(
                f"worker substrate has no vantage point {vp_name!r}"
            )
        trace = tracer.trace(
            vp.host, target, flow_id=shard.flow_id, src_address=vp.src_address
        )
        trace.vp_name = vp_name
        counters_after = tracer.counters()
        tracer_delta = {
            key: counters_after[key] - counters_before[key]
            for key in counters_after
        }
        counters_before = counters_after
        fault_delta = None
        if injector is not None:
            faults_after = {
                name: getattr(injector.stats, name)
                for name in _TRACE_FAULT_FIELDS
            }
            fault_delta = {
                name: faults_after[name] - faults_before[name]
                for name in _TRACE_FAULT_FIELDS
            }
            faults_before = faults_after
        results.append(
            (vp_name, target, _trace_to_wire(trace), tracer_delta, fault_delta)
        )
        now = time.monotonic()
        if now - last_heartbeat >= heartbeat_interval:
            conn.send(("hb", shard.shard_id, index + 1))
            last_heartbeat = now
    return results, slow


def _worker_main(conn, spec, plan_payload, tracer_config, heartbeat_interval):
    """Worker process entry point: build substrate, serve shards.

    Protocol (worker → supervisor): ``("ready",)`` once the substrate
    is built, ``("start", shard_id, attempt)`` when a shard begins
    executing (prefetched shards sit in the pipe until then),
    ``("hb", shard_id, jobs_done)`` between jobs,
    ``("done", shard_id, attempt, results, slow)`` per completed shard,
    ``("error", shard_id, attempt, message)`` when a shard raises.
    Supervisor → worker: ``("shard", Shard, attempt)`` and
    ``("stop",)``.
    """
    tracer, vps = spec.build()
    tracer.max_ttl = tracer_config["max_ttl"]
    tracer.jitter_ms = tracer_config["jitter_ms"]
    tracer.attempts = tracer_config["attempts"]
    tracer.backoff_ms = tracer_config["backoff_ms"]
    tracer.pace_ms = tracer_config.get("pace_ms", 0.0)
    injector = None
    if plan_payload is not None:
        injector = FaultInjector(FaultPlan.from_dict(plan_payload))
        tracer.network.attach_faults(injector)
    conn.send(("ready",))
    while True:
        message = conn.recv()
        if message[0] == "stop":
            return
        _, shard, attempt = message
        try:
            results, slow = _run_shard(
                conn, tracer, vps, injector, shard, attempt, heartbeat_interval
            )
        except Exception as exc:  # noqa: BLE001 - reported to supervisor
            conn.send(
                ("error", shard.shard_id, attempt,
                 f"{type(exc).__name__}: {exc}")
            )
            continue
        conn.send(("done", shard.shard_id, attempt, results, slow))


class _Worker:
    """Supervisor-side record of one spawned worker process."""

    __slots__ = (
        "process", "conn", "ready", "assigned", "active",
        "spawned_at", "started_at", "last_heartbeat",
    )

    def __init__(self, process, conn, now: float) -> None:
        self.process = process
        self.conn = conn
        self.ready = False
        #: Shards sent to this worker, oldest first: the head is
        #: running (once its ``start`` arrives), the rest are
        #: prefetched and still sitting in the pipe.
        self.assigned: "list[tuple[Shard, int]]" = []
        #: shard_id the worker has confirmed it is executing.
        self.active: "str | None" = None
        self.spawned_at = now
        self.started_at = 0.0
        self.last_heartbeat = now

    def kill(self) -> None:
        try:
            self.process.terminate()
            self.process.join(timeout=5.0)
        except Exception:  # noqa: BLE001 - best-effort teardown
            pass
        try:
            self.conn.close()
        except OSError:
            pass


class SupervisedCampaignRunner(ParallelCampaignRunner):
    """A :class:`CampaignRunner` speculating in supervised processes.

    Same ``run`` contract and checkpoints as the serial runner, same
    byte-identical corpus; adds crash tolerance (worker death between
    heartbeats loses at most one shard's progress), stall detection
    (heartbeat timeout), wall-clock shard deadlines, bounded
    retry-with-backoff on fresh workers, and poison-shard quarantine.
    """

    def __init__(
        self,
        tracer: Tracerouter,
        vps: "list[VantagePoint]",
        worker_spec: WorkerSpec,
        checkpoint=None,
        min_vps: int = 1,
        failover: bool = True,
        checkpoint_every: int = 2000,
        stop_after: "int | None" = None,
        workers: int = 4,
        shard_size: "int | None" = None,
        shard_deadline: float = 60.0,
        max_shard_retries: int = 2,
        heartbeat_interval: float = 0.2,
        heartbeat_timeout: float = 2.0,
        retry_backoff_s: float = 0.05,
        quarantine: "QuarantineReport | None" = None,
        obs=None,
        metrics=None,
    ) -> None:
        super().__init__(
            tracer, vps, checkpoint=checkpoint, min_vps=min_vps,
            failover=failover, checkpoint_every=checkpoint_every,
            stop_after=stop_after, workers=workers, obs=obs, metrics=metrics,
        )
        self.worker_spec = worker_spec
        self.shard_size = shard_size
        self.shard_deadline = float(shard_deadline)
        self.max_shard_retries = max(0, int(max_shard_retries))
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.retry_backoff_s = float(retry_backoff_s)
        self.quarantine = (
            quarantine if quarantine is not None
            else QuarantineReport(policy="lenient")
        )
        #: Job keys belonging to poisoned shards — blocked during replay.
        self._poisoned: "set[tuple[str, str]]" = set()

    # ------------------------------------------------------------------
    # Replay seams
    # ------------------------------------------------------------------
    def _job_blocked(self, job_key: "tuple[str, str]") -> bool:
        return job_key in self._poisoned

    def _save_checkpoint(self, stage, traces, done, complete) -> None:
        if self.checkpoint is not None and complete:
            # The stage's traces are now canonical; raw shard payloads
            # would only bloat the file.
            self.checkpoint.clear_shards(stage)
        super()._save_checkpoint(stage, traces, done, complete)

    def run(self, jobs, stage="campaign", flow_id=0, keep_empty=False):
        self._precompute(jobs, stage, flow_id)
        try:
            # Skip ParallelCampaignRunner.run — it would call our
            # _precompute a second time — and go straight to the serial
            # replay loop.
            return CampaignRunner.run(
                self, jobs, stage=stage, flow_id=flow_id, keep_empty=keep_empty
            )
        finally:
            self._speculative.clear()
            self._poisoned.clear()

    # ------------------------------------------------------------------
    # Speculation: shard + supervise
    # ------------------------------------------------------------------
    def _precompute(self, jobs, stage: str, flow_id: int) -> None:
        if self.checkpoint is not None and self.checkpoint.stage_complete(stage):
            return
        done: "set[tuple[str, str]]" = set()
        if self.checkpoint is not None and self.checkpoint.stage(stage) is not None:
            done = self.checkpoint.stage_done(stage)
        pending = [
            (vp, target) for vp, target in jobs if (vp.name, target) not in done
        ]
        if self.stop_after is not None:
            budget = max(0, self.stop_after - self._executed)
            pending = pending[:budget]
        job_pairs: "list[tuple[str, str]]" = []
        for vp, target in pending:
            # Jobs on already-dead VPs fail over during replay; their
            # stand-ins run synchronously on the canonical tracer.
            if not self.fleet.is_alive(vp.name):
                continue
            job_pairs.append((vp.name, target))
        if not job_pairs:
            return
        shards = plan_shards(
            job_pairs, stage, flow_id=flow_id, shard_size=self.shard_size,
            workers=self.workers,
        )
        self.health.shards_planned += len(shards)
        stored = (
            self.checkpoint.shard_results(stage)
            if self.checkpoint is not None
            else {}
        )
        pending_shards: "list[Shard]" = []
        for shard in shards:
            payload = stored.get(shard.shard_id)
            if payload is not None:
                self._ingest(shard, payload["results"])
                self.health.shards_reused += 1
            else:
                pending_shards.append(shard)
        attempts: "dict[str, int]" = {}
        outcomes: "dict[str, str]" = {
            shard.shard_id: "reused"
            for shard in shards if shard not in pending_shards
        }
        if pending_shards:
            if self.obs is not None:
                with self.obs.span(
                    f"supervise:{stage}",
                    shards=len(pending_shards), workers=self.workers,
                ) as span:
                    self._run_pool(pending_shards, stage, attempts, outcomes)
                    span.attributes["retried"] = self.health.shards_retried
                    span.attributes["poisoned"] = self.health.shards_poisoned
            else:
                self._run_pool(pending_shards, stage, attempts, outcomes)
        if self.obs is not None:
            # Per-shard spans are created *after* the pool completes, in
            # shard-id order: completion order is scheduling-dependent,
            # the span tree must not be.
            for shard in sorted(shards, key=lambda s: s.shard_id):
                with self.obs.span(
                    f"shard:{shard.shard_id}",
                    jobs=len(shard.jobs),
                    attempts=attempts.get(shard.shard_id, 0),
                    outcome=outcomes.get(shard.shard_id, "unknown"),
                ):
                    pass
        if self.metrics is not None:
            self.metrics.set_gauge("supervisor.workers", self.workers)
            self.metrics.inc("supervisor.shards_run", len(pending_shards))
            self.metrics.inc(
                "supervisor.speculated_jobs",
                sum(
                    len(s.jobs) for s in shards
                    if outcomes.get(s.shard_id) in ("done", "reused")
                ),
            )

    def _ingest(self, shard: Shard, results) -> None:
        """Install one shard's worker results into the speculation table."""
        hops = 0
        for vp_name, target, trace_payload, tracer_delta, fault_delta in results:
            trace = _trace_from_wire(trace_payload)
            hops += len(trace.hops)
            self._speculative[(vp_name, target, shard.flow_id)] = _Speculative(
                trace, tracer_delta, fault_delta
            )
        if self.metrics is not None:
            # Shard-merge corpus accounting: how much trace volume each
            # worker round-trip contributed to the assembled corpus.
            self.metrics.inc("corpus.shard_traces", len(results))
            self.metrics.inc("corpus.shard_hops", hops)

    # ------------------------------------------------------------------
    # The supervisor loop
    # ------------------------------------------------------------------
    def _spawn(self, ctx, plan_payload, tracer_config, now: float) -> _Worker:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=_worker_main,
            args=(child_conn, self.worker_spec, plan_payload, tracer_config,
                  self.heartbeat_interval),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self.health.workers_spawned += 1
        return _Worker(process, parent_conn, now)

    def _run_pool(self, pending_shards, stage, attempts, outcomes) -> None:
        ctx = multiprocessing.get_context("spawn")
        plan_payload = (
            self.injector.plan.as_dict() if self.injector is not None else None
        )
        tracer_config = {
            "max_ttl": self.tracer.max_ttl,
            "jitter_ms": self.tracer.jitter_ms,
            "attempts": self.tracer.attempts,
            "backoff_ms": self.tracer.backoff_ms,
            "pace_ms": self.tracer.pace_ms,
        }
        by_id = {shard.shard_id: shard for shard in pending_shards}
        #: (shard, eligible_at) — shards awaiting (re)assignment.
        queue: "list[tuple[Shard, float]]" = [
            (shard, 0.0) for shard in pending_shards
        ]
        finished = 0
        since_save_jobs = 0
        workers: "list[_Worker]" = []
        #: Consecutive worker deaths before the ready handshake.  A
        #: substrate that cannot even build (bad WorkerSpec kwargs,
        #: import error in a spawned interpreter) would otherwise put
        #: the supervisor in an infinite spawn-die-respawn loop.
        boot_failures = 0
        max_boot_failures = max(3, self.workers * 3)

        #: Backoff jitter draws from the fault plan when one is attached
        #: (so a seeded chaos run replays the identical retry schedule)
        #: and from the default zero-fault plan otherwise.
        jitter_plan = (
            self.injector.plan if self.injector is not None else FaultPlan()
        )

        def fail_shard(shard: Shard, reason: str, now: float) -> None:
            nonlocal finished
            made = attempts[shard.shard_id]
            if made > self.max_shard_retries:
                self.health.shards_poisoned += 1
                self._poisoned.update(shard.jobs)
                outcomes[shard.shard_id] = "poisoned"
                self.quarantine.add(
                    stage="supervisor",
                    category="poison-shard",
                    subject=shard.shard_id,
                    detail=f"{reason} after {made} attempt(s)",
                    dropped=True,
                    count=len(shard.jobs),
                )
                finished += 1
            else:
                self.health.shards_retried += 1
                backoff = (
                    self.retry_backoff_s
                    * (2 ** (made - 1))
                    * (0.5 + jitter_plan.retry_jitter(shard.shard_id, made))
                )
                queue.append((shard, now + backoff))

        def recycle(worker: _Worker, reason: str, now: float) -> None:
            nonlocal boot_failures
            worker.kill()
            workers.remove(worker)
            if not worker.ready:
                boot_failures += 1
                if boot_failures >= max_boot_failures:
                    raise MeasurementError(
                        f"supervised workers died {boot_failures} times "
                        f"before booting (last: {reason}); check the "
                        f"worker spec {self.worker_spec.factory!r}"
                    )
            # Blame the shard that was executing; if the worker died
            # before its first ``start`` arrived, blame the head of its
            # queue (so a worker that reliably dies on a shard cannot
            # respawn forever without anything being charged).
            blamed = worker.active
            if blamed is None and worker.assigned:
                blamed = worker.assigned[0][0].shard_id
            for shard, _ in worker.assigned:
                if shard.shard_id == blamed:
                    fail_shard(shard, reason, now)
                else:
                    # Prefetched but never started — it shares no blame
                    # for the death.  Refund the attempt and requeue.
                    attempts[shard.shard_id] -= 1
                    queue.append((shard, now))

        #: SIGTERM behaves like Ctrl-C while the pool runs: terminate
        #: workers, flush the checkpoint, exit cleanly.  Installed only
        #: when nothing else claimed the signal (the campaign service
        #: installs its own drain handler) and only on the main thread
        #: (signal.signal raises elsewhere).
        previous_sigterm = None
        if threading.current_thread() is threading.main_thread():
            current = signal.getsignal(signal.SIGTERM)
            if current in (signal.SIG_DFL, signal.default_int_handler):

                def _sigterm(signum, frame):  # pragma: no cover - signal glue
                    raise KeyboardInterrupt

                previous_sigterm = current
                signal.signal(signal.SIGTERM, _sigterm)
        try:
            while finished < len(pending_shards):
                now = time.monotonic()
                outstanding = len(pending_shards) - finished
                target = min(self.workers, outstanding)
                while sum(1 for w in workers if w.process.is_alive()) < target:
                    workers.append(
                        self._spawn(ctx, plan_payload, tracer_config, now)
                    )
                # Fill every worker to one shard before giving anyone a
                # second: the prefetch slot hides supervisor ingest
                # latency, it must not unbalance the pool.
                for depth in range(_PREFETCH_DEPTH):
                    for worker in list(workers):
                        if not worker.ready or len(worker.assigned) > depth:
                            continue
                        pick = None
                        for entry in queue:
                            if entry[1] <= now:
                                pick = entry
                                break
                        if pick is None:
                            continue
                        queue.remove(pick)
                        shard = pick[0]
                        attempts[shard.shard_id] = (
                            attempts.get(shard.shard_id, 0) + 1
                        )
                        attempt = attempts[shard.shard_id]
                        try:
                            worker.conn.send(("shard", shard, attempt))
                        except (BrokenPipeError, OSError):
                            # The worker died since the last poll; the
                            # shard never reached it.  Refund, requeue,
                            # and recycle (which charges whatever the
                            # worker *was* running).
                            attempts[shard.shard_id] -= 1
                            queue.append((shard, now))
                            self.health.workers_crashed += 1
                            if self.injector is not None:
                                self.injector.stats.worker_crashes += 1
                            recycle(worker, "worker crashed", now)
                            continue
                        if not worker.assigned:
                            worker.last_heartbeat = now
                        worker.assigned.append((shard, attempt))
                readable = _conn_wait(
                    [w.conn for w in workers], timeout=_POLL_TICK_S
                )
                now = time.monotonic()
                for worker in list(workers):
                    if worker.conn not in readable:
                        continue
                    try:
                        message = worker.conn.recv()
                    except (EOFError, OSError):
                        # Pipe closed without a goodbye: the worker
                        # process died (crash fault, OOM kill, ...).
                        self.health.workers_crashed += 1
                        if self.injector is not None:
                            self.injector.stats.worker_crashes += 1
                        recycle(worker, "worker crashed", now)
                        continue
                    kind = message[0]
                    if kind == "ready":
                        worker.ready = True
                        worker.last_heartbeat = now
                        boot_failures = 0
                    elif kind == "hb":
                        worker.last_heartbeat = now
                    elif kind == "start":
                        _, shard_id, _ = message
                        worker.active = shard_id
                        worker.started_at = now
                        worker.last_heartbeat = now
                    elif kind == "done":
                        _, shard_id, _, results, slow = message
                        shard = by_id[shard_id]
                        self._ingest(shard, results)
                        outcomes[shard_id] = "done"
                        finished += 1
                        worker.assigned = [
                            entry for entry in worker.assigned
                            if entry[0].shard_id != shard_id
                        ]
                        if worker.active == shard_id:
                            worker.active = None
                        if slow:
                            self.health.workers_slow += 1
                            if self.injector is not None:
                                self.injector.stats.worker_slowdowns += 1
                        if self.checkpoint is not None:
                            self.checkpoint.record_shard(
                                stage, shard_id, {"results": results}
                            )
                            since_save_jobs += len(shard.jobs)
                            if since_save_jobs >= self.checkpoint_every:
                                self.checkpoint.save()
                                since_save_jobs = 0
                    elif kind == "error":
                        _, shard_id, _, detail = message
                        worker.assigned = [
                            entry for entry in worker.assigned
                            if entry[0].shard_id != shard_id
                        ]
                        if worker.active == shard_id:
                            worker.active = None
                        fail_shard(by_id[shard_id], detail, now)
                for worker in list(workers):
                    if not worker.process.is_alive():
                        # Death is normally seen as pipe EOF above; this
                        # catches a worker that died with the pipe
                        # already drained.
                        if worker.conn not in readable:
                            self.health.workers_crashed += 1
                            if self.injector is not None:
                                self.injector.stats.worker_crashes += 1
                            recycle(worker, "worker crashed", now)
                        continue
                    if not worker.ready:
                        if now - worker.spawned_at > _BOOT_TIMEOUT_S:
                            recycle(worker, "worker failed to boot", now)
                        continue
                    if not worker.assigned:
                        continue
                    if now - worker.last_heartbeat > self.heartbeat_timeout:
                        self.health.workers_stalled += 1
                        if self.injector is not None:
                            self.injector.stats.worker_stalls += 1
                        recycle(worker, "heartbeat timeout", now)
                    elif (
                        worker.active is not None
                        and now - worker.started_at > self.shard_deadline
                    ):
                        self.health.workers_stalled += 1
                        if self.injector is not None:
                            self.injector.stats.worker_stalls += 1
                        recycle(worker, "shard deadline exceeded", now)
            if self.checkpoint is not None and since_save_jobs:
                self.checkpoint.save()
        except KeyboardInterrupt:
            # Graceful shutdown: the finally block below terminates the
            # spawn-context workers (no leaked processes), completed
            # shards stay parked in the checkpoint for the next resume,
            # and the caller gets a clean CampaignInterrupted instead
            # of a KeyboardInterrupt traceback.
            self.health.interrupted = True
            if self.checkpoint is not None:
                self.checkpoint.health = self.health.as_dict()
                if self.injector is not None:
                    self.checkpoint.injector_state = self.injector.state_dict()
                self.checkpoint.save()
            raise CampaignInterrupted(
                "supervised campaign interrupted (checkpoint: "
                f"{getattr(self.checkpoint, 'path', None)})"
            ) from None
        finally:
            if previous_sigterm is not None:
                signal.signal(signal.SIGTERM, previous_sigterm)
            for worker in workers:
                if worker.ready and not worker.assigned:
                    try:
                        worker.conn.send(("stop",))
                    except (BrokenPipeError, OSError):
                        pass
            for worker in workers:
                worker.kill()
