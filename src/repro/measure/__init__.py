"""Measurement tooling over the simulated internet.

The engines here expose only prober-visible observables (reply
addresses, RTTs, reply TTLs, rDNS) — never ground truth.
"""

from repro.measure.traceroute import Hop, TraceResult, Tracerouter
from repro.measure.ping import Pinger
from repro.measure.vantage import VantagePoint, VantagePointSet

__all__ = [
    "Hop",
    "Pinger",
    "TraceResult",
    "Tracerouter",
    "VantagePoint",
    "VantagePointSet",
]
