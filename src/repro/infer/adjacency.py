"""CO adjacency extraction and pruning (Appendix B.2, Table 4).

From the traceroute corpus, collect immediately adjacent responding
address pairs, lift them to CO adjacencies via the IP→CO mapping, and
prune four classes of false or out-of-scope adjacency:

* **MPLS tunnel entry/exit pairs** — a pair adjacent in the original
  corpus but separated by intermediate hops in the follow-up (DPR)
  corpus is a tunnel, not a link;
* **backbone adjacencies** — entries into the region are inferred
  separately (§5.2.5), so adjacencies touching a backbone hostname are
  set aside;
* **cross-region adjacencies** — overwhelmingly stale rDNS;
* **single-observation adjacencies** — traceroute noise (§5.2.1).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.infer.ip2co import Ip2CoMapping
from repro.measure.traceroute import TraceResult
from repro.net.dns import RdnsStore
from repro.rdns.regexes import HostnameParser


@dataclass
class AdjacencyStats:
    """Pruning accounting in the shape of Table 4."""

    initial_ip: int = 0
    initial_co: int = 0
    mpls_ip: int = 0
    mpls_co: int = 0
    backbone_ip: int = 0
    backbone_co: int = 0
    cross_region_ip: int = 0
    cross_region_co: int = 0
    single_ip: int = 0
    single_co: int = 0

    def as_rows(self) -> "list[tuple[str, str, str]]":
        """Render the Table 4 rows (percentages relative to Initial)."""
        def pct(n: int, total: int) -> str:
            return f"{100.0 * n / total:.2f}%" if total else "0%"

        return [
            ("Initial", f"{self.initial_ip}", f"{self.initial_co}"),
            ("MPLS", pct(self.mpls_ip, self.initial_ip), pct(self.mpls_co, self.initial_co)),
            ("Backbone", pct(self.backbone_ip, self.initial_ip), pct(self.backbone_co, self.initial_co)),
            ("Cross-Region", pct(self.cross_region_ip, self.initial_ip), pct(self.cross_region_co, self.initial_co)),
            ("Single", pct(self.single_ip, self.initial_ip), pct(self.single_co, self.initial_co)),
        ]


@dataclass
class RegionAdjacencies:
    """Surviving CO adjacencies per region, with observation counts."""

    #: region -> {(co_a, co_b): observation count} (directed, in path order).
    per_region: "dict[str, Counter]" = field(default_factory=dict)
    #: Adjacencies touching a backbone hop, kept for entry inference:
    #: (backbone tag, region, co_tag) -> count.
    backbone_pairs: "Counter" = field(default_factory=Counter)
    #: Pruned cross-region adjacencies — "overwhelmingly stale rDNS"
    #: (App. B.2) — kept for quarantine diagnostics:
    #: (region_a, co_a, region_b, co_b) -> count.
    cross_region_pairs: "Counter" = field(default_factory=Counter)
    stats: AdjacencyStats = field(default_factory=AdjacencyStats)

    def regions(self) -> "list[str]":
        return sorted(self.per_region)


class AdjacencyExtractor:
    """Builds :class:`RegionAdjacencies` from the corpora."""

    def __init__(self, mapping: Ip2CoMapping, rdns: RdnsStore, isp: str,
                 parser: "HostnameParser | None" = None) -> None:
        self.mapping = mapping
        self.rdns = rdns
        self.isp = isp
        self.parser = parser or HostnameParser()

    # -- helpers -------------------------------------------------------------
    def _backbone_tag(self, address: str) -> "str | None":
        parsed = self.parser.parse(self.rdns.lookup(address))
        if parsed is not None and parsed.role == "backbone" and (
            parsed.isp == self.isp or self.isp.startswith(parsed.isp)
        ):
            return parsed.co_tag or parsed.region
        return None

    @staticmethod
    def _mpls_separated(
        pair: "tuple[str, str]", followup_traces: "list[TraceResult]"
    ) -> bool:
        """True when follow-up traces show intermediate hops inside *pair*."""
        first, second = pair
        for trace in followup_traces:
            addresses = trace.responsive_addresses()
            if first in addresses and second in addresses:
                i, j = addresses.index(first), addresses.index(second)
                if j - i > 1:
                    return True
        return False

    # -- the extraction ---------------------------------------------------
    def extract(
        self,
        traces: "list[TraceResult]",
        followup_traces: "list[TraceResult] | None" = None,
    ) -> RegionAdjacencies:
        """Lift IP adjacencies to pruned per-region CO adjacencies."""
        followups = followup_traces or []
        result = RegionAdjacencies()
        stats = result.stats

        ip_pairs: Counter = Counter()
        for trace in traces:
            for pair in trace.adjacent_pairs():
                ip_pairs[pair] += 1
        stats.initial_ip = len(ip_pairs)

        # Index follow-up visibility once: pair -> separated?
        followup_index: "dict[tuple[str, str], bool]" = {}

        co_pairs: "dict[tuple[str, str, str], int]" = {}  # (region, a, b) -> n
        co_backbone: Counter = Counter()
        co_cross: Counter = Counter()
        mpls_co_pairs: set = set()

        stats_initial_co: set = set()
        for (ip_a, ip_b), count in ip_pairs.items():
            bb_tag = self._backbone_tag(ip_a)
            co_b = self.mapping.co_of(ip_b)
            if bb_tag is not None:
                stats.backbone_ip += 1
                if co_b is not None:
                    co_backbone[(bb_tag, co_b[0], co_b[1])] += count
                continue
            co_a = self.mapping.co_of(ip_a)
            if co_a is None or co_b is None:
                continue
            if co_a == co_b:
                continue
            region_a, tag_a = co_a
            region_b, tag_b = co_b
            stats_initial_co.add((region_a, tag_a, region_b, tag_b))
            if region_a != region_b:
                stats.cross_region_ip += 1
                co_cross[(region_a, tag_a, region_b, tag_b)] += count
                continue
            if followups:
                key = (ip_a, ip_b)
                separated = followup_index.get(key)
                if separated is None:
                    separated = self._mpls_separated(key, followups)
                    followup_index[key] = separated
                if separated:
                    stats.mpls_ip += 1
                    mpls_co_pairs.add((region_a, tag_a, tag_b))
                    continue
            co_pairs[(region_a, tag_a, tag_b)] = (
                co_pairs.get((region_a, tag_a, tag_b), 0) + count
            )

        stats.initial_co = len(stats_initial_co) + len(
            {(t, r, c) for (t, r, c) in co_backbone}
        )
        stats.backbone_co = len({key for key in co_backbone})
        stats.cross_region_co = len({key for key in co_cross})
        stats.mpls_co = len(mpls_co_pairs)

        # Single-observation pruning (§5.2.1).
        for (region, tag_a, tag_b), count in co_pairs.items():
            if count < 2:
                stats.single_co += 1
                stats.single_ip += 1
                continue
            result.per_region.setdefault(region, Counter())[(tag_a, tag_b)] = count
        result.backbone_pairs = co_backbone
        result.cross_region_pairs = co_cross
        return result
