"""CO adjacency extraction and pruning (Appendix B.2, Table 4).

From the traceroute corpus, collect immediately adjacent responding
address pairs, lift them to CO adjacencies via the IP→CO mapping, and
prune four classes of false or out-of-scope adjacency:

* **MPLS tunnel entry/exit pairs** — a pair adjacent in the original
  corpus but separated by intermediate hops in the follow-up (DPR)
  corpus is a tunnel, not a link;
* **backbone adjacencies** — entries into the region are inferred
  separately (§5.2.5), so adjacencies touching a backbone hostname are
  set aside;
* **cross-region adjacencies** — overwhelmingly stale rDNS;
* **single-observation adjacencies** — traceroute noise (§5.2.1).

Table 4 accounting is derived from one explicit CO-pair universe: every
distinct CO pair reached from the IP pairs — backbone pairs tagged
apart from regional pairs — is a member, ``initial_co`` is its size,
and each pruning row counts the members it removed.  The IP column of
the Single row counts the *IP pairs* whose CO pair was pruned for
having a single observation, not the CO pairs themselves.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.infer.ip2co import Ip2CoMapping
from repro.measure.traceroute import TraceResult
from repro.net.dns import RdnsStore
from repro.rdns.regexes import ISP_ALIASES, HostnameParser


@dataclass
class AdjacencyStats:
    """Pruning accounting in the shape of Table 4."""

    initial_ip: int = 0
    initial_co: int = 0
    mpls_ip: int = 0
    mpls_co: int = 0
    backbone_ip: int = 0
    backbone_co: int = 0
    cross_region_ip: int = 0
    cross_region_co: int = 0
    single_ip: int = 0
    single_co: int = 0

    def as_rows(self) -> "list[tuple[str, str, str]]":
        """Render the Table 4 rows (percentages relative to Initial)."""
        def pct(n: int, total: int) -> str:
            # A zero denominator renders like any other 0 ("0.00%", not
            # "0%") so Table 4 output diffs cleanly across runs.
            return f"{100.0 * n / total:.2f}%" if total else "0.00%"

        return [
            ("Initial", f"{self.initial_ip}", f"{self.initial_co}"),
            ("MPLS", pct(self.mpls_ip, self.initial_ip), pct(self.mpls_co, self.initial_co)),
            ("Backbone", pct(self.backbone_ip, self.initial_ip), pct(self.backbone_co, self.initial_co)),
            ("Cross-Region", pct(self.cross_region_ip, self.initial_ip), pct(self.cross_region_co, self.initial_co)),
            ("Single", pct(self.single_ip, self.initial_ip), pct(self.single_co, self.initial_co)),
        ]


@dataclass
class RegionAdjacencies:
    """Surviving CO adjacencies per region, with observation counts."""

    #: region -> {(co_a, co_b): observation count} (directed, in path order).
    per_region: "dict[str, Counter]" = field(default_factory=dict)
    #: Adjacencies touching a backbone hop, kept for entry inference:
    #: (backbone tag, region, co_tag) -> count.
    backbone_pairs: "Counter" = field(default_factory=Counter)
    #: Pruned cross-region adjacencies — "overwhelmingly stale rDNS"
    #: (App. B.2) — kept for quarantine diagnostics:
    #: (region_a, co_a, region_b, co_b) -> count.
    cross_region_pairs: "Counter" = field(default_factory=Counter)
    stats: AdjacencyStats = field(default_factory=AdjacencyStats)

    def regions(self) -> "list[str]":
        return sorted(self.per_region)


class FollowupIndex:
    """Positional index over the follow-up (DPR) corpus.

    Built in one pass: for every responding address, the earliest and
    latest *hop index* (TTL) it occupies in each follow-up trace.  A
    pair ``(first, second)`` is MPLS-separated exactly when some trace
    shows an occurrence of *second* more than one hop after an
    occurrence of *first* — i.e. when ``max(second hop indexes) >
    min(first hop indexes) + 1`` in a trace containing both.  That is
    equivalent to scanning all occurrence pairs in path order, without
    the O(pairs × followups × length) rescans of the naive approach.

    Spacing is measured in hop-index (TTL) space, not in positions over
    ``responsive_addresses()``: a follow-up trace ``A, *, B`` reveals an
    interior hop even though it never responded, so the pair *is*
    tunnel-separated — compressing out silent hops would hide it.
    """

    def __init__(self, traces: "list[TraceResult]") -> None:
        #: address -> {trace index: (earliest hop idx, latest hop idx)}
        self._spans: "dict[str, dict[int, tuple[int, int]]]" = {}
        for t_index, trace in enumerate(traces):
            for hop in trace.hops:
                if hop.address is None:
                    continue
                spans = self._spans.setdefault(hop.address, {})
                seen = spans.get(t_index)
                if seen is None:
                    spans[t_index] = (hop.index, hop.index)
                else:
                    spans[t_index] = (seen[0], hop.index)

    @classmethod
    def from_columnar(cls, corpus) -> "FollowupIndex":
        """Build the index from a columnar corpus without materializing
        ``TraceResult`` objects: spans come from one grouped min/max
        reduction over the hop columns
        (:func:`repro.corpus.columnar.hop_span_groups`).
        """
        from repro.corpus.columnar import hop_span_groups

        index = cls([])
        addr_ids, trace_ids, earliest, latest = hop_span_groups(corpus)
        addresses = corpus.addresses
        spans = index._spans
        for row in range(addr_ids.shape[0]):
            spans.setdefault(addresses[int(addr_ids[row])], {})[
                int(trace_ids[row])
            ] = (int(earliest[row]), int(latest[row]))
        return index

    def separated(self, first: str, second: str) -> bool:
        """Whether any follow-up trace shows hops *between* the pair."""
        spans_first = self._spans.get(first)
        spans_second = self._spans.get(second)
        if not spans_first or not spans_second:
            return False
        if len(spans_second) < len(spans_first):
            for t_index, (_, latest) in spans_second.items():
                seen = spans_first.get(t_index)
                if seen is not None and latest > seen[0] + 1:
                    return True
            return False
        for t_index, (earliest, _) in spans_first.items():
            seen = spans_second.get(t_index)
            if seen is not None and seen[1] > earliest + 1:
                return True
        return False


class AdjacencyExtractor:
    """Builds :class:`RegionAdjacencies` from the corpora."""

    def __init__(self, mapping: Ip2CoMapping, rdns: RdnsStore, isp: str,
                 parser: "HostnameParser | None" = None,
                 cache=None,
                 isp_aliases: "tuple[str, ...]" = (),
                 use_followup_index: bool = True) -> None:
        self.mapping = mapping
        self.rdns = rdns
        self.isp = isp
        self.parser = parser or HostnameParser()
        #: Shared :class:`~repro.perf.cache.InferenceCache`; optional —
        #: a bare extractor works against the store directly.
        self.cache = cache
        #: Hostname ISP labels accepted as this ISP for backbone
        #: routing: the exact name plus declared aliases, never a
        #: prefix match (``"at"`` must not claim ``"att"``).
        self._accepted_isps = frozenset(
            {isp} | set(ISP_ALIASES.get(isp, ())) | set(isp_aliases)
        )
        #: Benchmark switch: False selects the quadratic reference scan
        #: (with correct occurrence-pair semantics) instead of the
        #: positional index.
        self.use_followup_index = use_followup_index

    # -- helpers -------------------------------------------------------------
    def _backbone_tag(self, address: str) -> "str | None":
        if self.cache is not None:
            parsed = self.cache.parsed_lookup(address)
        else:
            parsed = self.parser.parse(self.rdns.lookup(address))
        if (
            parsed is not None
            and parsed.role == "backbone"
            and parsed.isp in self._accepted_isps
        ):
            return parsed.co_tag or parsed.region
        return None

    @staticmethod
    def _mpls_separated(
        pair: "tuple[str, str]", followup_traces: "list[TraceResult]"
    ) -> bool:
        """Reference scan: hops inside *pair* in any follow-up trace.

        Considers every occurrence pair in path order — the earliest
        occurrence of *first* against any later occurrence of *second*
        — so reversed or duplicate-hop DPR traces cannot mis-classify.
        Spacing is measured over ``Hop.index`` (TTL space): an
        unresponsive interior hop in ``A, *, B`` still separates the
        pair.  Kept as the :class:`FollowupIndex` equivalence oracle
        and the benchmark's pre-index baseline.
        """
        first, second = pair
        for trace in followup_traces:
            earliest = None
            for hop in trace.hops:
                if hop.address is None:
                    continue
                if hop.address == first and earliest is None:
                    earliest = hop.index
                elif (
                    hop.address == second
                    and earliest is not None
                    and hop.index > earliest + 1
                ):
                    return True
        return False

    # -- the extraction ---------------------------------------------------
    def extract(
        self,
        traces: "list[TraceResult]",
        followup_traces: "list[TraceResult] | None" = None,
    ) -> RegionAdjacencies:
        """Lift IP adjacencies to pruned per-region CO adjacencies."""
        followups = followup_traces or []
        ip_pairs: Counter = Counter()
        for trace in traces:
            for pair in trace.adjacent_pairs():
                ip_pairs[pair] += 1
        followup_index = (
            FollowupIndex(followups)
            if followups and self.use_followup_index
            else None
        )
        return self._classify(ip_pairs.items(), followups, followup_index)

    def extract_columnar(
        self, corpus, followup_corpus=None
    ) -> RegionAdjacencies:
        """:meth:`extract` over columnar corpora.

        Pair extraction and follow-up span computation run as numpy
        reductions (:func:`repro.corpus.columnar.adjacent_pair_counts`
        emits unique pairs in first-occurrence order, matching the
        object path's Counter insertion order exactly); the
        classification itself is shared with :meth:`extract`, so the
        object-graph path remains the digest-parity oracle.
        """
        from repro.corpus.columnar import adjacent_pair_counts

        addresses = corpus.addresses
        pair_items = [
            ((addresses[first], addresses[second]), count)
            for first, second, count in adjacent_pair_counts(corpus)
        ]
        followups: "list[TraceResult]" = []
        followup_index = None
        if followup_corpus is not None and len(followup_corpus):
            if self.use_followup_index:
                followup_index = FollowupIndex.from_columnar(followup_corpus)
            else:
                followups = followup_corpus.to_traces()
        return self._classify(pair_items, followups, followup_index)

    def _classify(
        self,
        pair_counts,
        followups: "list[TraceResult]",
        followup_index: "FollowupIndex | None",
    ) -> RegionAdjacencies:
        """The shared pruning/accounting pass over ``(pair, count)``
        items (insertion-ordered — output ordering follows it)."""
        result = RegionAdjacencies()
        stats = result.stats
        has_followups = bool(followups) or followup_index is not None

        # Reference-path memo: pair -> separated? (one scan per pair).
        separated_memo: "dict[tuple[str, str], bool]" = {}

        co_pairs: "dict[tuple[str, str, str], int]" = {}  # (region, a, b) -> n
        #: Surviving CO pair -> number of distinct contributing IP pairs
        #: (the Single row's IP column counts these, not CO pairs).
        co_pair_ip_sources: Counter = Counter()
        co_backbone: Counter = Counter()
        co_cross: Counter = Counter()
        mpls_co_pairs: set = set()

        # The one CO-pair universe all Table 4 CO columns derive from.
        # Backbone pairs get a distinguishing tag so a backbone PoP can
        # never collide with (and be double- or under-counted against)
        # a regional CO pair.
        universe: set = set()
        backbone_keys: set = set()

        for (ip_a, ip_b), count in pair_counts:
            stats.initial_ip += 1
            bb_tag = self._backbone_tag(ip_a)
            co_b = self.mapping.co_of(ip_b)
            if bb_tag is not None:
                stats.backbone_ip += 1
                if co_b is not None:
                    key = (bb_tag, co_b[0], co_b[1])
                    co_backbone[key] += count
                    backbone_keys.add(key)
                    universe.add(("backbone",) + key)
                continue
            co_a = self.mapping.co_of(ip_a)
            if co_a is None or co_b is None:
                continue
            if co_a == co_b:
                continue
            region_a, tag_a = co_a
            region_b, tag_b = co_b
            universe.add((region_a, tag_a, region_b, tag_b))
            if region_a != region_b:
                stats.cross_region_ip += 1
                co_cross[(region_a, tag_a, region_b, tag_b)] += count
                continue
            if has_followups:
                if followup_index is not None:
                    separated = followup_index.separated(ip_a, ip_b)
                else:
                    pair = (ip_a, ip_b)
                    separated = separated_memo.get(pair)
                    if separated is None:
                        separated = self._mpls_separated(pair, followups)
                        separated_memo[pair] = separated
                if separated:
                    stats.mpls_ip += 1
                    mpls_co_pairs.add((region_a, tag_a, tag_b))
                    continue
            key = (region_a, tag_a, tag_b)
            co_pairs[key] = co_pairs.get(key, 0) + count
            co_pair_ip_sources[key] += 1

        stats.initial_co = len(universe)
        stats.backbone_co = len(backbone_keys)
        stats.cross_region_co = len(co_cross)
        stats.mpls_co = len(mpls_co_pairs)

        # Single-observation pruning (§5.2.1).
        for key, count in co_pairs.items():
            region, tag_a, tag_b = key
            if count < 2:
                stats.single_co += 1
                stats.single_ip += co_pair_ip_sources[key]
                continue
            result.per_region.setdefault(region, Counter())[(tag_a, tag_b)] = count
        result.backbone_pairs = co_backbone
        result.cross_region_pairs = co_cross
        return result
