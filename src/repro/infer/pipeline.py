"""The end-to-end cable inference pipeline (§5).

Phase 1 (build router-topology observations):

1. traceroute to one address in every /24 of each regional network, to
   expose at least one router per EdgeCO;
2. traceroute to every address whose rDNS matches the ISP's regexes
   (harvested from the Rapid7-style snapshot), which finds the CO
   interconnections the /24 sweep misses;
3. traceroute to every intermediate address observed, exposing MPLS
   tunnel entry/exit pairs (the Charter false-edge source);
4. alias resolution (Mercator + MIDAR) over the rDNS-matched and
   observed addresses.

Phase 2 (build CO-topology graphs): IP→CO mapping (App. B.1), adjacency
extraction/pruning (App. B.2), per-region refinement (App. B.3), entry
inference (§5.2.5), and aggregation-type classification (Table 1).
"""

from __future__ import annotations

import contextlib
import ipaddress
import pathlib
from dataclasses import dataclass, field

from repro.alias.resolve import AliasResolver, AliasSets
from repro.errors import MeasurementError
from repro.faults import FaultInjector, FaultPlan
from repro.infer.adjacency import AdjacencyExtractor, RegionAdjacencies
from repro.infer.aggtype import classify_aggregation
from repro.infer.entries import EntryInferrer, EntryPoint
from repro.infer.ip2co import Ip2CoMapper, Ip2CoMapping
from repro.infer.refine import RefinedRegion, RegionRefiner
from repro.io.checkpoint import CampaignCheckpoint
from repro.measure.parallel import ParallelCampaignRunner
from repro.measure.runner import CampaignHealth, CampaignRunner
from repro.measure.supervisor import SupervisedCampaignRunner
from repro.measure.traceroute import TraceResult, Tracerouter
from repro.measure.vantage import VantagePoint
from repro.net.network import Network
from repro.obs import MetricsRegistry, Tracer
from repro.perf import InferenceCache, PhaseProfiler
from repro.rdns.regexes import HostnameParser
from repro.validate.invariants import InvariantGuard
from repro.validate.quarantine import QuarantineReport


#: Re-export under the historical name used across examples/benchmarks.
InferredRegion = RefinedRegion


@dataclass
class CableInferenceResult:
    """Everything the §5 analysis consumes."""

    isp: str
    regions: "dict[str, RefinedRegion]" = field(default_factory=dict)
    entries: "list[EntryPoint]" = field(default_factory=list)
    mapping: "Ip2CoMapping | None" = None
    adjacencies: "RegionAdjacencies | None" = None
    aliases: "AliasSets | None" = None
    traces: "list[TraceResult]" = field(default_factory=list)
    followup_traces: "list[TraceResult]" = field(default_factory=list)
    #: Campaign cost/loss accounting; None only for hand-built results.
    health: "CampaignHealth | None" = None
    #: Diverted conflicting observations; None when validation is off.
    quarantine: "QuarantineReport | None" = None

    def aggregation_types(self) -> "dict[str, str]":
        return {
            name: classify_aggregation(region)
            for name, region in sorted(self.regions.items())
        }

    def region_sizes(self) -> "dict[str, int]":
        return {
            name: region.graph.number_of_nodes()
            for name, region in sorted(self.regions.items())
        }


class CableInferencePipeline:
    """Drives the full two-phase methodology against one cable ISP."""

    def __init__(
        self,
        network: Network,
        isp,
        vps: "list[VantagePoint]",
        sweep_vps: int = 12,
        max_internal_vps: int = 4,
        parser: "HostnameParser | None" = None,
        attempts: int = 1,
        faults: "FaultPlan | None" = None,
        checkpoint_path=None,
        resume: bool = False,
        min_vps: int = 1,
        failover: bool = True,
        stop_after: "int | None" = None,
        validate: str = "off",
        parallel: int = 0,
        workers: int = 0,
        worker_spec=None,
        shard_size: "int | None" = None,
        shard_deadline: float = 60.0,
        max_shard_retries: int = 2,
        pace_ms: float = 0.0,
        profile: bool = False,
        trace_seed: int = 0,
        corpus_format: str = "json",
        route_model=None,
    ) -> None:
        if not vps:
            raise MeasurementError("the pipeline needs at least one vantage point")
        self.network = network
        self.isp = isp
        # Probe the target ISP mostly from outside it: a VP inside the
        # ISP traceroutes *outward*, reversing the downstream edge
        # orientation the region graphs rely on.  A small number of
        # inside VPs stays in the fleet (the paper's 47 VPs included
        # access-network homes) — they are what reveals direct
        # inter-region links that external paths never ride (§5.2.5).
        pool = ipaddress.ip_network(str(isp.allocator.pool))
        external = [
            vp for vp in vps
            if ipaddress.ip_address(vp.src_address) not in pool
        ]
        internal = [
            vp for vp in vps
            if ipaddress.ip_address(vp.src_address) in pool
        ]
        if internal and max_internal_vps > 0:
            count = min(max_internal_vps, len(internal))
            step = (len(internal) - 1) / max(1, count - 1)
            picked = [internal[round(i * step)] for i in range(count)]
        else:
            picked = []
        self.vps = external + picked
        if not external:
            raise MeasurementError(
                f"all vantage points are inside {isp.name}; none usable"
            )
        self.sweep_vps = max(1, min(sweep_vps, len(self.vps)))
        self.parser = parser or HostnameParser()
        self.attempts = max(1, attempts)
        self.tracer = Tracerouter(network, attempts=self.attempts,
                                  pace_ms=pace_ms)
        self.faults = faults
        #: Optional policy route model (see :mod:`repro.bias.routemodel`)
        #: attached to the network for the campaign's duration; None
        #: keeps the default delay-weighted SPF.  Collection must be
        #: in-process: supervised workers rebuild the substrate from
        #: ``worker_spec`` and would silently probe under plain SPF.
        self.route_model = route_model
        if route_model is not None and workers > 1:
            raise MeasurementError(
                "route_model campaigns cannot use supervised workers: "
                "worker processes rebuild the substrate without the model"
            )
        self.checkpoint_path = checkpoint_path
        self.resume = resume
        self.min_vps = min_vps
        self.failover = failover
        self.stop_after = stop_after
        #: Validation policy: strict (fail-fast), lenient
        #: (drop-and-record), or off.  Constructing the guard up front
        #: rejects unknown policies before any probing happens.
        self.validate = validate
        self._guard = InvariantGuard(validate) if validate != "off" else None
        self.runner: "CampaignRunner | None" = None
        #: In-process thread parallelism: 0/1 = serial CampaignRunner,
        #: N>1 = ParallelCampaignRunner with N threads.  Kept as the
        #: parity oracle; ``workers`` is the production path.
        self.parallel = max(0, parallel)
        #: Supervised process sharding: 0/1 = off, N>1 = a
        #: SupervisedCampaignRunner with N spawned workers rebuilding
        #: their substrate from ``worker_spec`` (byte-identical corpus,
        #: crash-tolerant).  Takes precedence over ``parallel``.
        self.workers = max(0, workers)
        self.worker_spec = worker_spec
        self.shard_size = shard_size
        self.shard_deadline = shard_deadline
        self.max_shard_retries = max_shard_retries
        if self.workers > 1 and self.worker_spec is None:
            raise MeasurementError(
                "workers > 1 needs a worker_spec describing how spawned "
                "workers rebuild the substrate"
            )
        #: Observability: every run records a span tree (phases plus
        #: campaign stages) and a metrics registry.  Both are always on
        #: — recording is cheap and never alters inference output; the
        #: CLI decides whether to export them.  Span ids derive from
        #: ``trace_seed``, so equal-seed runs are diffable span-by-span.
        #: Corpus representation for phase 2 and checkpointing: "json"
        #: keeps the historical object-graph path (checkpoint traces
        #: inline); "binary" lifts the collected traces into a columnar
        #: :class:`~repro.corpus.columnar.TraceCorpus`, runs the
        #: vectorized ip2co/adjacency paths, and stores checkpoint
        #: stage traces in ``.npz`` sidecars.  Output is digest-
        #: identical either way — the object path is the parity oracle.
        if corpus_format not in ("json", "binary"):
            raise MeasurementError(
                f"unknown corpus format {corpus_format!r} "
                "(expected 'json' or 'binary')"
            )
        self.corpus_format = corpus_format
        self.obs = Tracer(seed=trace_seed)
        self.metrics = MetricsRegistry()
        #: Phase-level wall-clock view over the span tree; None unless
        #: requested (the spans are recorded either way).
        self.profiler = PhaseProfiler(tracer=self.obs) if profile else None
        self._rdns_targets_memo: "tuple[int, list[str]] | None" = None

    # ------------------------------------------------------------------
    # Target selection
    # ------------------------------------------------------------------
    def slash24_targets(self) -> "list[str]":
        """One probe address per /24 of every announced region prefix."""
        targets = []
        for region_name in sorted(self.isp.region_prefixes):
            for prefix in self.isp.region_prefixes[region_name]:
                for subnet in prefix.subnets(new_prefix=24):
                    targets.append(str(subnet.network_address + 1))
        return targets

    def rdns_targets(self) -> "list[str]":
        """Every snapshot address whose name parses as an ISP regional CO.

        Memoized per rDNS epoch: the pipeline calls this three times per
        run (rdns sweep, alias seed set, mapper extras) over an
        unchanged snapshot, and each scan parses every hostname.
        """
        epoch = self.network.rdns.epoch
        if self._rdns_targets_memo is not None:
            memo_epoch, targets = self._rdns_targets_memo
            if memo_epoch == epoch:
                return list(targets)
        targets = []
        for address, hostname in self.network.rdns.snapshot_items():
            if self.parser.regional_co(hostname, self.isp.name) is not None:
                targets.append(address)
        self._rdns_targets_memo = (epoch, list(targets))
        return targets

    # ------------------------------------------------------------------
    # Phase 1
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def _fault_context(self):
        """Attach the fault plan and route model for the campaign.

        Restores whatever injector (usually None) and route model were
        attached before, so a shared Network fixture is never left
        perturbed.
        """
        previous = self.network.faults
        previous_model = self.network.route_model
        if self.faults is not None and self.faults.active:
            self.network.attach_faults(FaultInjector(self.faults))
        if self.route_model is not None:
            self.network.route_model = self.route_model
        try:
            yield
        finally:
            self.network.attach_faults(previous)
            self.network.route_model = previous_model

    def _make_runner(self) -> CampaignRunner:
        """Build (or resume) the campaign runner shared by all sweeps."""
        options = {
            "min_vps": self.min_vps,
            "failover": self.failover,
            "stop_after": self.stop_after,
            "obs": self.obs,
            "metrics": self.metrics,
        }
        runner_cls = CampaignRunner
        if self.workers > 1:
            runner_cls = SupervisedCampaignRunner
            options["worker_spec"] = self.worker_spec
            options["workers"] = self.workers
            options["shard_size"] = self.shard_size
            options["shard_deadline"] = self.shard_deadline
            options["max_shard_retries"] = self.max_shard_retries
            options["quarantine"] = (
                self._guard.report if self._guard is not None else None
            )
        elif self.parallel > 1:
            runner_cls = ParallelCampaignRunner
            options["workers"] = self.parallel
        checkpoint = None
        if self.checkpoint_path is not None:
            if self.resume and pathlib.Path(self.checkpoint_path).exists():
                # A corrupt or truncated checkpoint raises (the CLI
                # surfaces it as a one-line ``error:`` diagnostic):
                # silently restarting a multi-hour campaign is never
                # what --resume meant.  A checkpoint that does not
                # exist yet is not an error — first run of a resumable
                # campaign — so that case starts fresh.
                checkpoint = CampaignCheckpoint.load(self.checkpoint_path)
                return runner_cls.resumed(
                    self.tracer, self.vps, checkpoint, **options
                )
            checkpoint = CampaignCheckpoint(
                self.checkpoint_path, corpus_format=self.corpus_format
            )
        return runner_cls(
            self.tracer, self.vps, checkpoint=checkpoint, **options
        )

    def collect_traces(self) -> "tuple[list[TraceResult], list[TraceResult]]":
        """Steps 1–3: the main corpus plus the MPLS follow-up corpus.

        Each step is a named :class:`CampaignRunner` stage, so a killed
        campaign resumes from the last checkpoint rather than hour zero.
        Job order matches the historical nested loops exactly.
        """
        if self.runner is None:
            self.runner = self._make_runner()
        runner = self.runner
        sweep_fleet = self.vps[: self.sweep_vps]
        slash24 = self.slash24_targets()
        traces = runner.run(
            [(vp, target) for vp in sweep_fleet for target in slash24],
            stage="slash24",
        )
        rdns = self.rdns_targets()
        traces = traces + runner.run(
            [(vp, target) for vp in self.vps for target in rdns],
            stage="rdns",
        )
        # Step 3: target every observed intermediate address (the DPR
        # probes that expose MPLS tunnels, §5.1 / App. B.2).
        intermediates: "set[str]" = set()
        for trace in traces:
            addresses = trace.responsive_addresses()
            intermediates.update(addresses[:-1] if trace.completed else addresses)
        ordered = sorted(intermediates)
        followups = runner.run(
            [
                (self.vps[index % len(self.vps)], target)
                for index, target in enumerate(ordered)
            ],
            stage="followup",
        )
        return traces, followups

    def resolve_aliases(self, traces: "list[TraceResult]") -> AliasSets:
        """Step 4: Mercator + MIDAR over rDNS-matched and observed addresses.

        Runs from the first *surviving* vantage point; a fully dead
        fleet degrades to an empty alias set rather than raising.
        """
        addresses = set(self.rdns_targets())
        for trace in traces:
            addresses.update(trace.responsive_addresses())
        resolver = AliasResolver(
            self.network, p2p_prefixlen=self.isp.p2p_prefixlen,
            attempts=self.attempts,
        )
        vp = self.vps[0]
        if self.runner is not None:
            vp = self.runner.fleet.first_alive()
            if vp is None:
                if self.runner.health is not None:
                    self.runner.health.degraded = True
                return AliasSets([])
        return resolver.resolve(
            vp.host, sorted(addresses), src_address=vp.src_address,
            include_p2p_peers=True,
        )

    # ------------------------------------------------------------------
    # Phase 2 + orchestration
    # ------------------------------------------------------------------
    def _publish_metrics(self, guard, regions, traces, followups) -> None:
        """Final registry refresh at the end of a run.

        The campaign runner publishes at every health sync already;
        this pass catches post-campaign mutations (degradation flagged
        during alias resolution, quarantine counts, the final region
        inventory) so the exported snapshot is self-consistent.
        """
        metrics = self.metrics
        self.tracer.publish_metrics(metrics)
        if self.runner is not None:
            self.runner.health.publish_metrics(metrics)
            if self.runner.injector is not None:
                self.runner.injector.stats.publish_metrics(metrics)
        if guard is not None:
            guard.publish_metrics(metrics)
        metrics.set_gauge("pipeline.traces", len(traces))
        metrics.set_gauge("pipeline.followup_traces", len(followups))
        metrics.set_gauge("pipeline.regions", len(regions))
        metrics.set_gauge("pipeline.vantage_points", len(self.vps))

    def run(self) -> CableInferenceResult:
        """The full campaign: collect, resolve, map, prune, refine, enter.

        Phase 2 runs inside the fault context too: stale-rDNS injection
        (``FaultPlan.stale_rdns``) perturbs the *lookup* path the
        mapper and extractor read, exactly where real stale PTR records
        live.  Fault-free plans are unaffected — no phase-2 code path
        consults any other injector hook.
        """
        guard = self._guard
        obs = self.obs
        with self._fault_context():
            with obs.span("collect") as span:
                traces, followups = self.collect_traces()
                span.attributes["traces"] = len(traces)
                span.attributes["followups"] = len(followups)
            with obs.span("aliases"):
                aliases = self.resolve_aliases(traces)
            corpus = followup_corpus = None
            if self.corpus_format == "binary":
                from repro.corpus import TraceCorpus

                # Columnar lift: one pass over the collected objects,
                # after which phase 2's hot loops run as numpy
                # reductions over the corpus columns.
                with obs.span("corpus") as span:
                    corpus = TraceCorpus.from_traces(traces)
                    followup_corpus = TraceCorpus.from_traces(followups)
                    span.attributes["traces"] = len(corpus)
                    span.attributes["followups"] = len(followup_corpus)
                    span.attributes["hops"] = (
                        corpus.hop_count + followup_corpus.hop_count
                    )
                    span.attributes["addresses"] = len(corpus.addresses)
                self.metrics.inc(
                    "corpus.traces", len(corpus) + len(followup_corpus)
                )
                self.metrics.inc(
                    "corpus.hops",
                    corpus.hop_count + followup_corpus.hop_count,
                )
                self.metrics.set_gauge(
                    "corpus.interned_addresses", len(corpus.addresses)
                )
            # The cache is built *inside* the fault context so its
            # generation check captures the campaign's injector; it is
            # shared by every phase-2 stage, which all re-lookup and
            # re-parse the same few thousand addresses.  It reports
            # into the run's registry (``cache.*`` counters).
            cache = InferenceCache(self.network.rdns, self.parser,
                                   metrics=self.metrics)
            mapper = Ip2CoMapper(
                self.network.rdns, self.isp.name,
                p2p_prefixlen=self.isp.p2p_prefixlen, parser=self.parser,
                cache=cache,
            )
            with obs.span("ip2co") as span:
                extras = set(self.rdns_targets())
                if corpus is not None:
                    mapping = mapper.build_columnar(
                        corpus, aliases, extra_addresses=extras
                    )
                else:
                    mapping = mapper.build(
                        traces, aliases, extra_addresses=extras
                    )
                span.attributes["mapped_addresses"] = len(mapping)
            if guard is not None:
                guard.check_mapping(mapping, aliases)
            extractor = AdjacencyExtractor(
                mapping, self.network.rdns, self.isp.name, parser=self.parser,
                cache=cache,
            )
            with obs.span("adjacency") as span:
                if corpus is not None:
                    adjacencies = extractor.extract_columnar(
                        corpus, followup_corpus
                    )
                else:
                    adjacencies = extractor.extract(
                        traces, followup_traces=followups
                    )
                span.attributes["regions"] = len(adjacencies.per_region)
        if guard is not None:
            guard.check_adjacencies(adjacencies)

        refiner = RegionRefiner(cache=cache)
        with obs.span("refine") as span:
            regions = {
                region_name: refiner.refine(region_name, counter)
                for region_name, counter in adjacencies.per_region.items()
            }
            span.attributes["regions"] = len(regions)
        if guard is not None:
            for region in regions.values():
                guard.check_region(region)
        inferrer = EntryInferrer(mapping)
        with obs.span("entries") as span:
            entries = inferrer.backbone_entries(adjacencies)
            entries += inferrer.inter_region_entries(traces)
            span.attributes["entries"] = len(entries)

        self._publish_metrics(guard, regions, traces, followups)
        quarantine = guard.report if guard is not None else None
        if quarantine is None and isinstance(
            self.runner, SupervisedCampaignRunner
        ) and self.runner.quarantine:
            # Poison-shard records exist even with validation off; a
            # result must never hide quarantined coverage loss.
            quarantine = self.runner.quarantine
        return CableInferenceResult(
            isp=self.isp.name,
            regions=regions,
            entries=entries,
            mapping=mapping,
            adjacencies=adjacencies,
            aliases=aliases,
            traces=traces,
            followup_traces=followups,
            health=self.runner.health if self.runner is not None else None,
            quarantine=quarantine,
        )
