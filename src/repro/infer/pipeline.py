"""The end-to-end cable inference pipeline (§5).

Phase 1 (build router-topology observations):

1. traceroute to one address in every /24 of each regional network, to
   expose at least one router per EdgeCO;
2. traceroute to every address whose rDNS matches the ISP's regexes
   (harvested from the Rapid7-style snapshot), which finds the CO
   interconnections the /24 sweep misses;
3. traceroute to every intermediate address observed, exposing MPLS
   tunnel entry/exit pairs (the Charter false-edge source);
4. alias resolution (Mercator + MIDAR) over the rDNS-matched and
   observed addresses.

Phase 2 (build CO-topology graphs): IP→CO mapping (App. B.1), adjacency
extraction/pruning (App. B.2), per-region refinement (App. B.3), entry
inference (§5.2.5), and aggregation-type classification (Table 1).
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field

from repro.alias.resolve import AliasResolver, AliasSets
from repro.errors import MeasurementError
from repro.infer.adjacency import AdjacencyExtractor, RegionAdjacencies
from repro.infer.aggtype import classify_aggregation
from repro.infer.entries import EntryInferrer, EntryPoint
from repro.infer.ip2co import Ip2CoMapper, Ip2CoMapping
from repro.infer.refine import RefinedRegion, RegionRefiner
from repro.measure.traceroute import TraceResult, Tracerouter
from repro.measure.vantage import VantagePoint
from repro.net.network import Network
from repro.rdns.regexes import HostnameParser


#: Re-export under the historical name used across examples/benchmarks.
InferredRegion = RefinedRegion


@dataclass
class CableInferenceResult:
    """Everything the §5 analysis consumes."""

    isp: str
    regions: "dict[str, RefinedRegion]" = field(default_factory=dict)
    entries: "list[EntryPoint]" = field(default_factory=list)
    mapping: "Ip2CoMapping | None" = None
    adjacencies: "RegionAdjacencies | None" = None
    aliases: "AliasSets | None" = None
    traces: "list[TraceResult]" = field(default_factory=list)
    followup_traces: "list[TraceResult]" = field(default_factory=list)

    def aggregation_types(self) -> "dict[str, str]":
        return {
            name: classify_aggregation(region)
            for name, region in sorted(self.regions.items())
        }

    def region_sizes(self) -> "dict[str, int]":
        return {
            name: region.graph.number_of_nodes()
            for name, region in sorted(self.regions.items())
        }


class CableInferencePipeline:
    """Drives the full two-phase methodology against one cable ISP."""

    def __init__(
        self,
        network: Network,
        isp,
        vps: "list[VantagePoint]",
        sweep_vps: int = 12,
        max_internal_vps: int = 4,
        parser: "HostnameParser | None" = None,
    ) -> None:
        if not vps:
            raise MeasurementError("the pipeline needs at least one vantage point")
        self.network = network
        self.isp = isp
        # Probe the target ISP mostly from outside it: a VP inside the
        # ISP traceroutes *outward*, reversing the downstream edge
        # orientation the region graphs rely on.  A small number of
        # inside VPs stays in the fleet (the paper's 47 VPs included
        # access-network homes) — they are what reveals direct
        # inter-region links that external paths never ride (§5.2.5).
        pool = ipaddress.ip_network(str(isp.allocator.pool))
        external = [
            vp for vp in vps
            if ipaddress.ip_address(vp.src_address) not in pool
        ]
        internal = [
            vp for vp in vps
            if ipaddress.ip_address(vp.src_address) in pool
        ]
        if internal and max_internal_vps > 0:
            count = min(max_internal_vps, len(internal))
            step = (len(internal) - 1) / max(1, count - 1)
            picked = [internal[round(i * step)] for i in range(count)]
        else:
            picked = []
        self.vps = external + picked
        if not external:
            raise MeasurementError(
                f"all vantage points are inside {isp.name}; none usable"
            )
        self.sweep_vps = max(1, min(sweep_vps, len(self.vps)))
        self.parser = parser or HostnameParser()
        self.tracer = Tracerouter(network)

    # ------------------------------------------------------------------
    # Target selection
    # ------------------------------------------------------------------
    def slash24_targets(self) -> "list[str]":
        """One probe address per /24 of every announced region prefix."""
        targets = []
        for region_name in sorted(self.isp.region_prefixes):
            for prefix in self.isp.region_prefixes[region_name]:
                for subnet in prefix.subnets(new_prefix=24):
                    targets.append(str(subnet.network_address + 1))
        return targets

    def rdns_targets(self) -> "list[str]":
        """Every snapshot address whose name parses as an ISP regional CO."""
        targets = []
        for address, hostname in self.network.rdns.snapshot_items():
            if self.parser.regional_co(hostname, self.isp.name) is not None:
                targets.append(address)
        return targets

    # ------------------------------------------------------------------
    # Phase 1
    # ------------------------------------------------------------------
    def _sweep(self, targets: "list[str]", vps: "list[VantagePoint]") -> "list[TraceResult]":
        traces = []
        for vp in vps:
            for target in targets:
                trace = self.tracer.trace(
                    vp.host, target, src_address=vp.src_address
                )
                trace.vp_name = vp.name
                if trace.hops:
                    traces.append(trace)
        return traces

    def collect_traces(self) -> "tuple[list[TraceResult], list[TraceResult]]":
        """Steps 1–3: the main corpus plus the MPLS follow-up corpus."""
        sweep_fleet = self.vps[: self.sweep_vps]
        traces = self._sweep(self.slash24_targets(), sweep_fleet)
        traces += self._sweep(self.rdns_targets(), self.vps)
        # Step 3: target every observed intermediate address (the DPR
        # probes that expose MPLS tunnels, §5.1 / App. B.2).
        intermediates: "set[str]" = set()
        for trace in traces:
            addresses = trace.responsive_addresses()
            intermediates.update(addresses[:-1] if trace.completed else addresses)
        followups = []
        ordered = sorted(intermediates)
        for index, target in enumerate(ordered):
            vp = self.vps[index % len(self.vps)]
            trace = self.tracer.trace(vp.host, target, src_address=vp.src_address)
            trace.vp_name = vp.name
            if trace.hops:
                followups.append(trace)
        return traces, followups

    def resolve_aliases(self, traces: "list[TraceResult]") -> AliasSets:
        """Step 4: Mercator + MIDAR over rDNS-matched and observed addresses."""
        addresses = set(self.rdns_targets())
        for trace in traces:
            addresses.update(trace.responsive_addresses())
        resolver = AliasResolver(
            self.network, p2p_prefixlen=self.isp.p2p_prefixlen
        )
        vp = self.vps[0]
        return resolver.resolve(
            vp.host, sorted(addresses), src_address=vp.src_address,
            include_p2p_peers=True,
        )

    # ------------------------------------------------------------------
    # Phase 2 + orchestration
    # ------------------------------------------------------------------
    def run(self) -> CableInferenceResult:
        """The full campaign: collect, resolve, map, prune, refine, enter."""
        traces, followups = self.collect_traces()
        aliases = self.resolve_aliases(traces)
        mapper = Ip2CoMapper(
            self.network.rdns, self.isp.name,
            p2p_prefixlen=self.isp.p2p_prefixlen, parser=self.parser,
        )
        mapping = mapper.build(
            traces, aliases, extra_addresses=set(self.rdns_targets())
        )
        extractor = AdjacencyExtractor(
            mapping, self.network.rdns, self.isp.name, parser=self.parser
        )
        adjacencies = extractor.extract(traces, followup_traces=followups)

        refiner = RegionRefiner()
        regions = {
            region_name: refiner.refine(region_name, counter)
            for region_name, counter in adjacencies.per_region.items()
        }
        inferrer = EntryInferrer(mapping)
        entries = inferrer.backbone_entries(adjacencies)
        entries += inferrer.inter_region_entries(traces)

        return CableInferenceResult(
            isp=self.isp.name,
            regions=regions,
            entries=entries,
            mapping=mapping,
            adjacencies=adjacencies,
            aliases=aliases,
            traces=traces,
            followup_traces=followups,
        )
