"""The AT&T wireline inference pipeline (§6, Appendix C).

AT&T's regional routers carry no rDNS, block probes from outside the
ISP, and hide their aggregation layer inside MPLS — so the cable
methodology does not transfer.  The pipeline instead:

1. **harvests lightspeed gateways** (lspgw) from the rDNS snapshot —
   their names geolocate the region (``…lightspeed.sndgca…``);
2. **bootstraps** with traceroutes from internal vantage points (Ark /
   Atlas probes on AT&T last-miles, McTraceroute WiFi hotspots) toward
   the lspgws, which reveals EdgeCO routers but not AggCOs;
3. **discovers router prefixes**: the non-lspgw intermediate hops fall
   into a handful of /24s per region (Table 6);
4. **exposes MPLS interiors** by tracerouting *to* every address in
   those prefixes (Direct Path Revelation, Table 5), which reveals the
   agg routers;
5. **groups addresses into routers** (alias resolution) and routers
   into COs: two routers one hop upstream of the same last-mile link
   share an EdgeCO (§6.2); backbone routers fully meshed to all agg
   routers share the single BackboneCO.
"""

from __future__ import annotations

import ipaddress
from collections import defaultdict
from dataclasses import dataclass, field

from repro.alias.resolve import AliasResolver, AliasSets
from repro.errors import InferenceError, MeasurementError
from repro.measure.traceroute import TraceResult, Tracerouter
from repro.measure.vantage import VantagePoint
from repro.net.network import Network
from repro.rdns.regexes import HostnameParser


@dataclass
class AttRegionTopology:
    """The inferred router- and CO-level topology of one region."""

    region: str
    #: Router groups keyed by a representative address.
    backbone_routers: "list[set[str]]" = field(default_factory=list)
    agg_routers: "list[set[str]]" = field(default_factory=list)
    edge_routers: "list[set[str]]" = field(default_factory=list)
    #: EdgeCOs: groups of edge-router representatives sharing last-mile links.
    edge_cos: "list[set[str]]" = field(default_factory=list)
    #: Inferred prefix classes (Table 6).
    edge_prefixes: "set[str]" = field(default_factory=set)
    agg_prefixes: "set[str]" = field(default_factory=set)
    #: Router-level edges between representatives.
    router_edges: "set[tuple[str, str]]" = field(default_factory=set)
    #: Whether both backbone routers connect to every agg router —
    #: the §6.2 evidence for a single BackboneCO.
    backbone_fully_meshed: bool = False

    @property
    def backbone_co_count(self) -> int:
        """One office when fully meshed, else one per backbone router."""
        if not self.backbone_routers:
            return 0
        return 1 if self.backbone_fully_meshed else len(self.backbone_routers)

    @property
    def routers_per_edge_co(self) -> float:
        """Mean router count per inferred EdgeCO (the paper's 2.0)."""
        if not self.edge_cos:
            return 0.0
        return sum(len(group) for group in self.edge_cos) / len(self.edge_cos)


class AttInferencePipeline:
    """Drives the §6 methodology for one telco-style ISP."""

    def __init__(
        self,
        network: Network,
        internal_vps: "list[VantagePoint]",
        parser: "HostnameParser | None" = None,
        isp_name: str = "att",
    ) -> None:
        if not internal_vps:
            raise MeasurementError("the AT&T pipeline needs internal vantage points")
        self.network = network
        self.internal_vps = list(internal_vps)
        self.parser = parser or HostnameParser()
        self.isp_name = isp_name
        self.tracer = Tracerouter(network)

    # ------------------------------------------------------------------
    # Step 1: lspgw harvest
    # ------------------------------------------------------------------
    def harvest_lspgw_targets(self) -> "dict[str, list[str]]":
        """Region tag → lspgw addresses, from the rDNS snapshot."""
        per_region: "dict[str, list[str]]" = defaultdict(list)
        for address, hostname in self.network.rdns.snapshot_items():
            parsed = self.parser.parse(hostname)
            if parsed is not None and parsed.isp == self.isp_name and parsed.role == "lspgw":
                per_region[parsed.region].append(address)
        return dict(per_region)

    def _lspgw_slash24s(self, lspgw_addresses: "list[str]") -> "set[str]":
        return {
            str(ipaddress.ip_network(f"{address}/24", strict=False))
            for address in lspgw_addresses
        }

    # ------------------------------------------------------------------
    # Steps 2-4: probing
    # ------------------------------------------------------------------
    def _sweep(self, targets: "list[str]", vps: "list[VantagePoint]") -> "list[TraceResult]":
        traces = []
        for vp in vps:
            for target in targets:
                trace = self.tracer.trace(vp.host, target, src_address=vp.src_address)
                trace.vp_name = vp.name
                if trace.hops:
                    traces.append(trace)
        return traces

    def bootstrap(self, lspgw_addresses: "list[str]",
                  extra_vps: "list[VantagePoint] | None" = None) -> "list[TraceResult]":
        """Step 2: internal traceroutes toward the region's lspgws."""
        vps = self.internal_vps + list(extra_vps or [])
        return self._sweep(sorted(lspgw_addresses), vps)

    def _segment_regions(self, trace: TraceResult) -> "list[tuple[str, str]]":
        """Attribute each responding hop to a regional network.

        Intra-region traces (no backbone hop) belong entirely to the
        region named in their lspgw hops; inter-region traces are split
        at the backbone hops — hops before the first backbone hop sit in
        the VP's own region, hops after the last sit in the target's
        (App. C's region association via BackboneCO rDNS).  Returns
        ``(address, region)`` pairs; unattributable hops get "".
        """
        hops = [h for h in trace.hops if h.address is not None]
        parsed = [self.parser.parse(h.rdns) for h in hops]
        backbone_idx = [
            i for i, p in enumerate(parsed)
            if p is not None and p.role == "backbone"
        ]
        lspgw_regions = [
            (i, p.region) for i, p in enumerate(parsed)
            if p is not None and p.role == "lspgw"
        ]
        out: "list[tuple[str, str]]" = []
        for i, hop in enumerate(hops):
            if parsed[i] is not None and parsed[i].role == "backbone":
                out.append((hop.address, ""))
                continue
            if backbone_idx:
                if i < backbone_idx[0]:
                    candidates = [r for j, r in lspgw_regions if j < backbone_idx[0]]
                elif i > backbone_idx[-1]:
                    candidates = [r for j, r in lspgw_regions if j > backbone_idx[-1]]
                else:
                    candidates = []
            else:
                candidates = [r for _j, r in lspgw_regions]
            out.append((hop.address, candidates[0] if candidates else ""))
        return out

    def discover_router_prefixes(
        self, traces: "list[TraceResult]", lspgw_addresses: "list[str]",
        region: str,
    ) -> "set[str]":
        """Step 3: the /24s holding one region's unnamed router addresses."""
        lspgw_nets = self._lspgw_slash24s(lspgw_addresses)
        prefixes: "set[str]" = set()
        for trace in traces:
            for address, hop_region in self._segment_regions(trace):
                if hop_region != region:
                    continue
                if self.parser.parse(self.network.rdns.dig(address)) is not None:
                    continue  # named hop: backbone or lspgw
                net = str(ipaddress.ip_network(f"{address}/24", strict=False))
                if net in lspgw_nets:
                    continue
                prefixes.add(net)
        return prefixes

    def extend_prefixes_from_dpr(
        self,
        dpr_traces: "list[TraceResult]",
        prefixes: "set[str]",
        lspgw_addresses: "list[str]",
    ) -> "set[str]":
        """Add /24s of newly revealed (DPR) hops to the prefix set.

        DPR probes target region infrastructure, so every unnamed hop
        past the last backbone hop belongs to the region — including
        the AggCO prefix that MPLS hid from the bootstrap (Table 6).
        """
        lspgw_nets = self._lspgw_slash24s(lspgw_addresses)
        extended = set(prefixes)
        for trace in dpr_traces:
            hops = [h for h in trace.hops if h.address is not None]
            parsed = [self.parser.parse(h.rdns) for h in hops]
            backbone_idx = [
                i for i, p in enumerate(parsed)
                if p is not None and p.role == "backbone"
            ]
            start = backbone_idx[-1] + 1 if backbone_idx else 0
            for hop, p in zip(hops[start:], parsed[start:]):
                if p is not None:
                    continue
                net = str(ipaddress.ip_network(f"{hop.address}/24", strict=False))
                if net not in lspgw_nets:
                    extended.add(net)
        return extended

    def dpr_sweep(self, prefixes: "set[str]",
                  extra_vps: "list[VantagePoint] | None" = None,
                  stride: int = 1) -> "list[TraceResult]":
        """Step 4: traceroute to every address of every router prefix.

        Targeting infrastructure addresses directly makes the MPLS LSPs
        route the probe as plain IP, revealing interior (agg) hops.
        In-region VPs (the McTraceroute hotspots) go first: their paths
        traverse the region in both directions, which is what exposes
        the full backbone↔agg mesh.
        """
        vps = list(extra_vps or []) + self.internal_vps
        targets = []
        for prefix in sorted(prefixes):
            network = ipaddress.ip_network(prefix)
            hosts = list(network)
            targets.extend(str(a) for a in hosts[::max(1, stride)])
        return self._sweep(targets, vps[:6])

    # ------------------------------------------------------------------
    # Step 5: routers and COs
    # ------------------------------------------------------------------
    def _alias_sets(self, addresses: "list[str]") -> AliasSets:
        resolver = AliasResolver(self.network, p2p_prefixlen=31)
        vp = self.internal_vps[0]
        return resolver.resolve(vp.host, addresses, src_address=vp.src_address)

    def build_region_topology(
        self,
        region: str,
        bootstrap_traces: "list[TraceResult]",
        dpr_traces: "list[TraceResult]",
        lspgw_addresses: "list[str]",
        region_prefixes: "set[str] | None" = None,
    ) -> AttRegionTopology:
        """Steps 5+: classify routers, group into COs, count offices."""
        lspgw_nets = self._lspgw_slash24s(lspgw_addresses)
        all_traces = bootstrap_traces + dpr_traces
        if region_prefixes is None:
            region_prefixes = self.discover_router_prefixes(
                bootstrap_traces, lspgw_addresses, region
            )

        def hop_kind(hop) -> str:
            if hop.address is None:
                return "silent"
            parsed = self.parser.parse(hop.rdns)
            if parsed is not None and parsed.role == "backbone":
                return "backbone"
            net = str(ipaddress.ip_network(f"{hop.address}/24", strict=False))
            if net in lspgw_nets or (
                parsed is not None and parsed.role == "lspgw"
            ):
                return "lspgw"
            if net in region_prefixes:
                return "router"
            return "other"

        # Collect addresses by classification and edge evidence: a
        # router hop immediately before a lspgw hop is an EdgeCO router
        # serving that last-mile /24.
        backbone_addrs: "set[str]" = set()
        router_addrs: "set[str]" = set()
        lastmile_of: "dict[str, set[str]]" = defaultdict(set)  # addr -> lspgw /24s
        adjacency: "set[tuple[str, str]]" = set()
        for trace in all_traces:
            hops = [h for h in trace.hops if h.address is not None]
            kinds = [hop_kind(h) for h in hops]
            for position, (hop, kind) in enumerate(zip(hops, kinds)):
                if kind == "backbone":
                    backbone_addrs.add(hop.address)
                elif kind == "router" and position < len(hops) - 1:
                    # Only transit (TTL-expired) hops are routers; an
                    # address that only ever answers as the final echo
                    # is an end device (DSLAM port, customer CPE).
                    router_addrs.add(hop.address)
            for (h1, k1), (h2, k2) in zip(
                zip(hops, kinds), zip(hops[1:], kinds[1:])
            ):
                if k1 == "router" and k2 == "lspgw":
                    net = str(ipaddress.ip_network(f"{h2.address}/24", strict=False))
                    lastmile_of[h1.address].add(net)
                if k1 in ("backbone", "router") and k2 in ("backbone", "router"):
                    adjacency.add((h1.address, h2.address))

        aliases = self._alias_sets(sorted(router_addrs | backbone_addrs))

        def rep(address: str) -> str:
            group = aliases.group_of(address)
            return min(group) if group else address

        # Routers one hop above a last-mile link are edge routers; the
        # remaining unnamed routers surfaced by DPR are agg routers.
        edge_reps: "dict[str, set[str]]" = defaultdict(set)  # rep -> lastmile nets
        for address, nets in lastmile_of.items():
            edge_reps[rep(address)].update(nets)
        all_reps = {rep(a) for a in router_addrs}

        router_edges = {
            (rep(a), rep(b)) for a, b in adjacency if rep(a) != rep(b)
        }
        # The region's own backbone routers are the named backbone hops
        # directly adjacent to its regional routers; other backbone
        # hops on the paths belong to the long-haul network.
        backbone_candidates = {rep(a) for a in backbone_addrs}
        backbone_reps = {
            bb for bb in backbone_candidates
            if any(
                (bb, other) in router_edges or (other, bb) in router_edges
                for other in all_reps
            )
        }
        router_edges = {
            (a, b) for a, b in router_edges
            if (a in all_reps or a in backbone_reps)
            and (b in all_reps or b in backbone_reps)
        }
        agg_reps = all_reps - set(edge_reps) - backbone_reps

        # EdgeCO grouping: routers sharing a last-mile /24 share a CO.
        co_of: "dict[str, int]" = {}
        cos: "list[set[str]]" = []
        net_to_co: "dict[str, int]" = {}
        for edge_rep, nets in sorted(edge_reps.items()):
            existing = {net_to_co[n] for n in nets if n in net_to_co}
            if existing:
                index = min(existing)
            else:
                index = len(cos)
                cos.append(set())
            cos[index].add(edge_rep)
            for net in nets:
                net_to_co[net] = index
        edge_cos = [group for group in cos if group]

        # Backbone mesh check (§6.2): every backbone rep adjacent to
        # every agg rep implies a single BackboneCO.  A small tolerance
        # absorbs ECMP coverage gaps (a combination that no observed
        # flow happened to traverse).
        combos = [
            (bb, agg) for bb in backbone_reps for agg in agg_reps
        ]
        observed = sum(
            1 for bb, agg in combos
            if (bb, agg) in router_edges or (agg, bb) in router_edges
        )
        fully_meshed = bool(combos) and observed >= 0.85 * len(combos)

        def groups_of(reps: "set[str]") -> "list[set[str]]":
            out = []
            for group_rep in sorted(reps):
                group = aliases.group_of(group_rep)
                out.append(set(group) if group else {group_rep})
            return out

        def prefixes_of(reps: "set[str]") -> "set[str]":
            nets = set()
            for group in groups_of(reps):
                for address in group:
                    nets.add(str(ipaddress.ip_network(f"{address}/24", strict=False)))
            return nets

        return AttRegionTopology(
            region=region,
            backbone_routers=groups_of(backbone_reps),
            agg_routers=groups_of(agg_reps),
            edge_routers=groups_of(set(edge_reps)),
            edge_cos=edge_cos,
            edge_prefixes=prefixes_of(set(edge_reps)),
            agg_prefixes=prefixes_of(agg_reps),
            router_edges=router_edges,
            backbone_fully_meshed=fully_meshed,
        )

    # ------------------------------------------------------------------
    # Orchestration
    # ------------------------------------------------------------------
    def run_region(self, region: str,
                   extra_vps: "list[VantagePoint] | None" = None,
                   dpr_stride: int = 1) -> AttRegionTopology:
        """The full §6 pipeline for one region tag (e.g. ``sndgca``)."""
        per_region = self.harvest_lspgw_targets()
        try:
            lspgws = per_region[region]
        except KeyError as exc:
            raise InferenceError(
                f"no lightspeed gateways found for region {region!r}"
            ) from exc
        bootstrap_traces = self.bootstrap(lspgws, extra_vps=extra_vps)
        prefixes = self.discover_router_prefixes(bootstrap_traces, lspgws, region)
        dpr_traces = self.dpr_sweep(prefixes, extra_vps=extra_vps, stride=dpr_stride)
        prefixes = self.extend_prefixes_from_dpr(dpr_traces, prefixes, lspgws)
        return self.build_region_topology(
            region, bootstrap_traces, dpr_traces, lspgws,
            region_prefixes=prefixes,
        )
