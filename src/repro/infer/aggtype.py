"""Region aggregation-type classification (Table 1, Fig 8).

Classifies a refined region graph as:

* ``single`` — one AggCO layer with a single AggCO (Fig 8a);
* ``two`` — one AggCO layer made of two ring-sharing AggCOs (Fig 8b);
* ``multi`` — multiple aggregation levels: AggCOs feeding other AggCOs,
  or more than one AggCO ring group (Fig 8c).
"""

from __future__ import annotations

from repro.infer.refine import RefinedRegion


def classify_aggregation(region: RefinedRegion) -> str:
    """Classify one refined region's aggregation type."""
    aggs = region.agg_cos
    if not aggs:
        return "single"
    # Any AggCO feeding another AggCO implies layered aggregation.
    for agg in aggs:
        for dst in region.graph.successors(agg):
            if dst in aggs and dst != agg:
                # Mutual edges between two paired AggCOs on one ring do
                # not make the region multi-level; a one-way feed does.
                if not region.graph.has_edge(dst, agg) or len(aggs) > 2:
                    return "multi"
    groups = [g for g in region.agg_groups if g]
    if len(aggs) == 1:
        return "single"
    if len(aggs) == 2 and len(groups) <= 2:
        return "two"
    return "multi"


def count_types(regions: "list[RefinedRegion]") -> "dict[str, int]":
    """Aggregate Table 1 counts over a set of regions."""
    counts = {"single": 0, "two": 0, "multi": 0}
    for region in regions:
        counts[classify_aggregation(region)] += 1
    return counts
