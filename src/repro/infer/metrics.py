"""Scoring inferred topologies against ground truth.

The paper validated with network operators (§5.4); the simulation can
do better — every generator records exactly what it built, so inferred
region graphs can be scored with precision/recall over CO edges and CO
recovery rates.  Only this module reads ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.infer.refine import RefinedRegion
from repro.topology.co import Region


@dataclass(frozen=True)
class RegionScore:
    """Edge- and node-level agreement with ground truth."""

    region: str
    true_cos: int
    inferred_cos: int
    matched_cos: int
    true_edges: int
    inferred_edges: int
    matched_edges: int

    @property
    def co_recall(self) -> float:
        return self.matched_cos / self.true_cos if self.true_cos else 1.0

    @property
    def edge_precision(self) -> float:
        return self.matched_edges / self.inferred_edges if self.inferred_edges else 1.0

    @property
    def edge_recall(self) -> float:
        return self.matched_edges / self.true_edges if self.true_edges else 1.0

    @property
    def edge_f1(self) -> float:
        p, r = self.edge_precision, self.edge_recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def score_region(
    inferred: RefinedRegion,
    truth: Region,
    tag_of_co: "dict[str, str]",
) -> RegionScore:
    """Score one inferred region against its ground truth.

    ``tag_of_co`` maps ground-truth CO uids to the rDNS tags the
    inference works in (the generator's ``co_tag`` bookkeeping).
    """
    true_tags = {
        tag_of_co[uid] for uid in truth.cos if uid in tag_of_co
    }
    inferred_tags = set(inferred.graph.nodes)
    matched_cos = len(true_tags & inferred_tags)

    true_edges = set()
    for up_uid, down_uid in truth.edge_pairs():
        up_tag, down_tag = tag_of_co.get(up_uid), tag_of_co.get(down_uid)
        if up_tag and down_tag:
            true_edges.add((up_tag, down_tag))
    inferred_edges = set(inferred.graph.edges)
    matched_edges = len(true_edges & inferred_edges)

    return RegionScore(
        region=truth.name,
        true_cos=len(true_tags),
        inferred_cos=len(inferred_tags),
        matched_cos=matched_cos,
        true_edges=len(true_edges),
        inferred_edges=len(inferred_edges),
        matched_edges=matched_edges,
    )


def single_upstream_fraction(regions: "list[RefinedRegion]",
                             exclude: "set[str] | None" = None) -> float:
    """Fraction of EdgeCOs with exactly one upstream CO (App. B.4)."""
    excluded = exclude or set()
    single = total = 0
    for region in regions:
        if region.name in excluded:
            continue
        for edge_co in region.edge_cos:
            upstreams = set(region.graph.predecessors(edge_co))
            if not upstreams:
                continue
            total += 1
            if len(upstreams) == 1:
                single += 1
    return single / total if total else 0.0


@dataclass(frozen=True)
class DegradationPoint:
    """One configuration's aggregate score in a fault-tolerance sweep.

    Compares a (possibly faulty) run's inference against the clean
    run's, region by region, so the scorecard reads as "how much of the
    clean result this configuration kept".
    """

    label: str
    regions_scored: int
    mean_edge_recall: float
    mean_edge_precision: float
    mean_co_recall: float

    def as_dict(self) -> "dict[str, object]":
        return {
            "label": self.label,
            "regions_scored": self.regions_scored,
            "mean_edge_recall": round(self.mean_edge_recall, 4),
            "mean_edge_precision": round(self.mean_edge_precision, 4),
            "mean_co_recall": round(self.mean_co_recall, 4),
        }


def degradation_scorecard(
    label: str,
    scores: "list[RegionScore]",
) -> DegradationPoint:
    """Aggregate per-region scores into one sweep point."""
    if not scores:
        return DegradationPoint(label, 0, 0.0, 0.0, 0.0)
    count = len(scores)
    return DegradationPoint(
        label=label,
        regions_scored=count,
        mean_edge_recall=sum(s.edge_recall for s in scores) / count,
        mean_edge_precision=sum(s.edge_precision for s in scores) / count,
        mean_co_recall=sum(s.co_recall for s in scores) / count,
    )


def recall_recovered(
    clean: DegradationPoint,
    naive: DegradationPoint,
    resilient: DegradationPoint,
) -> float:
    """Fraction of fault-induced edge-recall loss won back by resilience.

    1.0 means the resilient configuration fully restored the clean
    run's recall; 0.0 means it did no better than the naive one.
    Returns 1.0 when the naive run lost nothing (nothing to recover).
    """
    lost = clean.mean_edge_recall - naive.mean_edge_recall
    if lost <= 0:
        return 1.0
    regained = resilient.mean_edge_recall - naive.mean_edge_recall
    return max(0.0, regained / lost)


def edge_to_agg_ratio(regions: "list[RefinedRegion]") -> float:
    """EdgeCO:AggCO ratio, counting any CO with an outgoing edge as an
    AggCO (the §5.3 / §5.5 definition behind the 7.7× figure)."""
    aggs = edges = 0
    for region in regions:
        for node in region.graph.nodes:
            if region.graph.out_degree(node) > 0:
                aggs += 1
            else:
                edges += 1
    return edges / aggs if aggs else 0.0
