"""Mobile IPv6 bit-field analysis (§7.2, Fig 16, Fig 17, Tables 7–8).

Mobile carriers expose almost no rDNS, but they encode topology into
IPv6 address bits.  Given the geo-tagged ShipTraceroute corpus, the
analyzer classifies the upper 64 bits of the phone's own address (and
of each in-carrier traceroute hop) at nibble granularity:

* **prefix** — never changes: the carrier's allocation;
* **geo fields** — change only when the phone moves between areas:
  region / backbone-region / EdgeCO identifiers;
* **cycling fields** — change across airplane-mode re-attachments at
  one location, cycling through a *small* value set: packet-gateway
  (PGW) identifiers;
* **subscriber bits** — change on every attachment with high value
  diversity: per-session subnet bits.

From those fields it counts regions and PGWs per region (Tables 7–8)
and classifies each carrier's aggregation design (Fig 17): AT&T-style
single EdgeCO per region, Verizon-style EdgeCOs sharing backbone
regions, or T-Mobile-style sites with multiple third-party backbones.
"""

from __future__ import annotations

import ipaddress
import re
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import InferenceError
from repro.measure.cellular import CellDatabase
from repro.measure.shiptraceroute import ShipCampaignResult, ShipRound

#: Max distinct values (at one location) for a field to count as a
#: cycling PGW field rather than subscriber randomness.
_CYCLE_MAX_VALUES = 6

_PROVIDER_RE = re.compile(r"\.([a-z0-9-]+)\.(?:net|com)$")


def _nibble(value: int, index: int) -> int:
    """Nibble *index* (0 = most significant) of a 64-bit int."""
    return (value >> (60 - 4 * index)) & 0xF


def _upper64(address: "str | ipaddress.IPv6Address") -> int:
    return int(ipaddress.IPv6Address(str(address))) >> 64


@dataclass
class BitFieldReport:
    """Field classification of one address population (Fig 16 rows)."""

    #: Stable prefix length in bits (multiple of 4).
    prefix_bits: int
    #: Bit ranges [start, end) varying with geography only.
    geo_fields: "list[tuple[int, int]]" = field(default_factory=list)
    #: Bit ranges cycling across re-attachments at one location.
    cycling_fields: "list[tuple[int, int]]" = field(default_factory=list)
    #: Bit ranges with high per-attachment diversity.
    subscriber_fields: "list[tuple[int, int]]" = field(default_factory=list)

    def describe(self) -> "list[str]":
        """Human-readable rows like the paper's Fig 16 captions."""
        rows = [f"0-{self.prefix_bits - 1}: carrier prefix"] if self.prefix_bits else []
        rows += [f"{a}-{b - 1}: geography (region/EdgeCO)" for a, b in self.geo_fields]
        rows += [f"{a}-{b - 1}: packet gateway (cycles on re-attach)" for a, b in self.cycling_fields]
        rows += [f"{a}-{b - 1}: per-session subscriber bits" for a, b in self.subscriber_fields]
        return rows


@dataclass
class CarrierAnalysis:
    """Everything inferred for one carrier."""

    carrier: str
    user_report: BitFieldReport
    hop_reports: "dict[int, BitFieldReport]"
    region_count: int
    #: region key (hex of geo-field values) -> inferred PGW count.
    pgw_counts: "dict[str, int]"
    backbone_providers: "set[str]"
    topology_class: str


class MobileIPv6Analyzer:
    """Runs the §7.2 analysis over a ShipTraceroute corpus."""

    def __init__(self, celldb: "CellDatabase | None" = None) -> None:
        self.celldb = celldb or CellDatabase()

    # ------------------------------------------------------------------
    # Corpus access (observables only)
    # ------------------------------------------------------------------
    @staticmethod
    def _rounds(result: ShipCampaignResult) -> "list[ShipRound]":
        rounds = result.successful_rounds()
        if not rounds:
            raise InferenceError(
                f"no successful rounds for carrier {result.carrier_name}"
            )
        return rounds

    def _location_key(self, round_: ShipRound) -> "tuple[float, float]":
        if round_.cellid is None:
            raise InferenceError("successful round without a cellid")
        return self.celldb.locate(round_.cellid)

    @staticmethod
    def _user_value(round_: ShipRound) -> int:
        return _upper64(round_.attachment.user_prefix.network_address)

    @staticmethod
    def _hop_value(round_: ShipRound, hop_position: int) -> "Optional[int]":
        named = [
            h for h in round_.trace.hops[:-1]
            if h.address is not None and ":" in h.address
        ]
        if hop_position >= len(named):
            return None
        return _upper64(named[hop_position].address)

    # ------------------------------------------------------------------
    # Field classification
    # ------------------------------------------------------------------
    def _classify_nibbles(
        self, by_location: "dict[tuple, list[int]]"
    ) -> BitFieldReport:
        """Classify the 16 nibbles of a 64-bit value population."""
        all_values = [v for values in by_location.values() for v in values]
        if not all_values:
            raise InferenceError("empty address population")
        kinds: "list[str]" = []
        for index in range(16):
            nibbles_everywhere = {_nibble(v, index) for v in all_values}
            if len(nibbles_everywhere) == 1:
                kinds.append("prefix")
                continue
            varies_within = False
            max_local_diversity = 1
            value_repeats = False
            for values in by_location.values():
                if len(values) < 2:
                    continue
                local = [_nibble(v, index) for v in values]
                distinct = set(local)
                if len(distinct) > 1:
                    varies_within = True
                    max_local_diversity = max(max_local_diversity, len(distinct))
                if len(values) >= 3 and len(distinct) < len(local):
                    value_repeats = True
            if not varies_within:
                kinds.append("geo")
            elif max_local_diversity <= _CYCLE_MAX_VALUES and value_repeats:
                # A PGW field cycles through a small, *recurring* value
                # set; per-session subscriber bits rarely repeat.
                kinds.append("cycle")
            else:
                kinds.append("subscriber")
        # A stable prefix is only the *leading* run of constant nibbles;
        # constant nibbles inside variable fields stay with their field.
        prefix_nibbles = 0
        for kind in kinds:
            if kind != "prefix":
                break
            prefix_nibbles += 1
        report = BitFieldReport(prefix_bits=prefix_nibbles * 4)
        for kind_name, target in (
            ("geo", report.geo_fields),
            ("cycle", report.cycling_fields),
            ("subscriber", report.subscriber_fields),
        ):
            start = None
            for index in range(prefix_nibbles, 17):
                is_kind = index < 16 and kinds[index] == kind_name
                if is_kind and start is None:
                    start = index
                elif not is_kind and start is not None:
                    target.append((start * 4, index * 4))
                    start = None
        return report

    def analyze_user_addresses(self, result: ShipCampaignResult) -> BitFieldReport:
        """Fig 16's user-address rows for one carrier."""
        by_location: "dict[tuple, list[int]]" = defaultdict(list)
        for round_ in self._rounds(result):
            by_location[self._location_key(round_)].append(self._user_value(round_))
        return self._classify_nibbles(by_location)

    def analyze_hop(self, result: ShipCampaignResult, hop_position: int) -> "Optional[BitFieldReport]":
        """Fig 16's router-address rows for one in-carrier hop."""
        by_location: "dict[tuple, list[int]]" = defaultdict(list)
        for round_ in self._rounds(result):
            value = self._hop_value(round_, hop_position)
            if value is not None:
                by_location[self._location_key(round_)].append(value)
        if not by_location:
            return None
        return self._classify_nibbles(by_location)

    # ------------------------------------------------------------------
    # Regions and PGWs
    # ------------------------------------------------------------------
    @staticmethod
    def _field_value(value: int, fields: "list[tuple[int, int]]") -> "tuple[int, ...]":
        out = []
        for start, end in fields:
            out.append((value >> (64 - end)) & ((1 << (end - start)) - 1))
        return tuple(out)

    def region_keys(self, result: ShipCampaignResult,
                    report: "BitFieldReport | None" = None) -> "dict[str, list[ShipRound]]":
        """Group rounds by the user-address geography fields."""
        report = report or self.analyze_user_addresses(result)
        groups: "dict[str, list[ShipRound]]" = defaultdict(list)
        for round_ in self._rounds(result):
            value = self._user_value(round_)
            key_parts = self._field_value(value, report.geo_fields)
            key = ":".join(f"{part:x}" for part in key_parts) or "all"
            groups[key].append(round_)
        return dict(groups)

    def count_regions(self, result: ShipCampaignResult) -> int:
        """Distinct geography-field values observed (11 for AT&T…)."""
        return len(self.region_keys(result))

    def pgw_counts(self, result: ShipCampaignResult) -> "dict[str, int]":
        """PGWs per region: distinct cycling-field values (Tables 7–8).

        The PGW may only be visible in router hops (AT&T), in the user
        address (Verizon, T-Mobile), or both; we take the most diverse
        cycling field available per region.
        """
        user_report = self.analyze_user_addresses(result)
        hop_reports = {}
        for position in range(6):
            hop_report = self.analyze_hop(result, position)
            if hop_report is not None and hop_report.cycling_fields:
                hop_reports[position] = hop_report
        counts: "dict[str, int]" = {}
        for key, rounds in self.region_keys(result, user_report).items():
            best = 1
            # Only the most significant cycling field is the PGW id:
            # genuine identifiers sit right after the geography fields,
            # while occasional spurious repeats live in the low
            # subscriber bits.
            if user_report.cycling_fields:
                values = {
                    self._field_value(
                        self._user_value(r), user_report.cycling_fields[:1]
                    )
                    for r in rounds
                }
                best = max(best, len(values))
            for position, hop_report in hop_reports.items():
                values = set()
                for r in rounds:
                    value = self._hop_value(r, position)
                    if value is not None:
                        values.add(
                            self._field_value(value, hop_report.cycling_fields[:1])
                        )
                best = max(best, len(values))
            counts[key] = best
        return counts

    # ------------------------------------------------------------------
    # Fig 17: carrier topology classification
    # ------------------------------------------------------------------
    def backbone_providers(self, result: ShipCampaignResult) -> "set[str]":
        """Backbone provider domains seen in hop rDNS."""
        providers = set()
        for round_ in self._rounds(result):
            for hop in round_.trace.hops:
                if not hop.rdns:
                    continue
                match = _PROVIDER_RE.search(hop.rdns)
                if match:
                    providers.add(match.group(1))
        return providers

    def classify_topology(self, result: ShipCampaignResult) -> str:
        """One of Fig 17's three designs."""
        providers = self.backbone_providers(result)
        if len(providers) > 1:
            return "distributed-multi-backbone"
        report = self.analyze_user_addresses(result)
        if len(report.geo_fields) >= 2:
            coarse = {
                self._field_value(self._user_value(r), report.geo_fields[:1])
                for r in self._rounds(result)
            }
            fine = {
                self._field_value(self._user_value(r), report.geo_fields)
                for r in self._rounds(result)
            }
            if len(fine) > len(coarse):
                return "shared-backbone-multi-edgeco"
        return "single-edgeco-per-region"

    # ------------------------------------------------------------------
    # One-call analysis
    # ------------------------------------------------------------------
    def analyze(self, result: ShipCampaignResult) -> CarrierAnalysis:
        """Run everything for one carrier."""
        user_report = self.analyze_user_addresses(result)
        hop_reports = {}
        for position in range(6):
            hop_report = self.analyze_hop(result, position)
            if hop_report is not None:
                hop_reports[position] = hop_report
        return CarrierAnalysis(
            carrier=result.carrier_name,
            user_report=user_report,
            hop_reports=hop_reports,
            region_count=self.count_regions(result),
            pgw_counts=self.pgw_counts(result),
            backbone_providers=self.backbone_providers(result),
            topology_class=self.classify_topology(result),
        )
