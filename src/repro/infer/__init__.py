"""The paper's contribution: CO-level topology inference.

Two-phase methodology (§5): Phase 1 builds router-level observations
(traceroute + rDNS + alias resolution → IP→CO mappings); Phase 2 builds
and heuristically refines CO-level regional graphs (adjacency pruning,
AggCO identification, star-topology conformance, entry-point
inference).  Plus the AT&T-specific pipeline (§6) and the mobile IPv6
bit-field analysis (§7).
"""

from repro.infer.ip2co import Ip2CoMapper, Ip2CoMapping
from repro.infer.adjacency import AdjacencyExtractor, AdjacencyStats
from repro.infer.refine import RegionRefiner, RefineStats
from repro.infer.entries import EntryInferrer
from repro.infer.aggtype import classify_aggregation
from repro.infer.pipeline import CableInferencePipeline, InferredRegion
from repro.infer.att import AttInferencePipeline
from repro.infer.mobile_ipv6 import MobileIPv6Analyzer
from repro.infer.metrics import score_region

__all__ = [
    "AdjacencyExtractor",
    "AttInferencePipeline",
    "MobileIPv6Analyzer",
    "AdjacencyStats",
    "CableInferencePipeline",
    "EntryInferrer",
    "InferredRegion",
    "Ip2CoMapper",
    "Ip2CoMapping",
    "RegionRefiner",
    "RefineStats",
    "classify_aggregation",
    "score_region",
]
