"""Region graph refinement (§5.2.2–§5.2.4, Appendix B.3).

Takes the pruned CO adjacencies of one region and conforms them to the
physical dual-star-over-fiber-ring topology the networks actually use:

1. **Identify AggCOs** — COs whose out-degree exceeds the region mean
   plus one standard deviation.
2. **Remove false EdgeCO→EdgeCO edges** — usually uncorrected stale
   rDNS; kept only when the source CO aggregates several otherwise
   unconnected COs (a small AggCO in disguise).
3. **Pair related AggCOs and add missing edges** — AggCOs whose EdgeCO
   sets overlap ≥3/4 ride the same fiber rings, so each must connect to
   the union of their EdgeCOs; missing edges are usually missing rDNS.
"""

from __future__ import annotations

import statistics
from collections import Counter
from dataclasses import dataclass, field

import networkx as nx


@dataclass
class RefineStats:
    """Edge churn accounting (App. B.3 reports these as percentages)."""

    initial_edges: int = 0
    removed_edge_edges: int = 0
    added_ring_edges: int = 0
    final_edges: int = 0
    #: The EdgeCO→EdgeCO pairs B.3 removed (quarantine diagnostics;
    #: not serialized — JSON artifacts carry only the counts above).
    removed_pairs: "list[tuple[str, str]]" = field(default_factory=list)

    @property
    def removed_fraction(self) -> float:
        return self.removed_edge_edges / self.initial_edges if self.initial_edges else 0.0

    @property
    def added_fraction(self) -> float:
        return self.added_ring_edges / self.initial_edges if self.initial_edges else 0.0


@dataclass
class RefinedRegion:
    """The refined graph plus role assignments for one region."""

    name: str
    graph: nx.DiGraph
    agg_cos: "set[str]"
    edge_cos: "set[str]"
    #: Groups of AggCOs inferred to share fiber rings (sub-regions).
    agg_groups: "list[set[str]]"
    stats: RefineStats


class RegionRefiner:
    """Refines one region's adjacency counter into a `RefinedRegion`."""

    def __init__(self, overlap_threshold: float = 0.75,
                 reciprocal_threshold: float = 0.5,
                 remove_false_edges: bool = True,
                 complete_rings: bool = True,
                 cache=None) -> None:
        self.overlap_threshold = overlap_threshold
        self.reciprocal_threshold = reciprocal_threshold
        #: Ablation switches: disable §5.2.3 (false-edge removal) or
        #: §5.2.4 (ring completion) to measure each heuristic's value.
        self.remove_false_edges = remove_false_edges
        self.complete_rings = complete_rings
        #: Shared :class:`~repro.perf.cache.InferenceCache`; ablation
        #: reruns recompute the AggCO threshold over identical degree
        #: multisets, which the cache memoizes.
        self.cache = cache

    # -- step 1: AggCO identification ---------------------------------------
    def identify_agg_cos(self, graph: nx.DiGraph) -> "set[str]":
        """COs with out-degree above mean + one standard deviation."""
        degrees = [graph.out_degree(node) for node in graph.nodes]
        if not degrees:
            return set()
        if self.cache is not None:
            threshold = self.cache.degree_threshold(tuple(sorted(degrees)))
        else:
            threshold = statistics.fmean(degrees) + statistics.pstdev(degrees)
        aggs = {node for node in graph.nodes if graph.out_degree(node) > threshold}
        if not aggs:
            # Degenerate flat regions: the max-degree CO is the hub.
            best = max(graph.nodes, key=graph.out_degree)  # type: ignore[arg-type]
            if graph.out_degree(best) > 0:
                aggs = {best}
        return aggs

    # -- step 2: false EdgeCO->EdgeCO edge removal ---------------------------
    def _remove_edge_to_edge(self, graph: nx.DiGraph, aggs: "set[str]",
                             stats: RefineStats) -> None:
        agg_connected = {
            node for node in graph.nodes
            if any(pred in aggs for pred in graph.predecessors(node))
        }
        for src in list(graph.nodes):
            if src in aggs:
                continue
            out_edges = [dst for dst in graph.successors(src) if dst not in aggs]
            if not out_edges:
                continue
            # Small-AggCO exception: a CO feeding 2+ COs that no AggCO
            # reaches is genuinely aggregating (App. B.3).
            orphans = [dst for dst in out_edges if dst not in agg_connected]
            if len(orphans) >= 2:
                continue
            for dst in out_edges:
                graph.remove_edge(src, dst)
                stats.removed_edge_edges += 1
                stats.removed_pairs.append((src, dst))

    # -- step 3: AggCO pairing + missing edges -------------------------------
    def pair_agg_cos(self, graph: nx.DiGraph, aggs: "set[str]") -> "list[set[str]]":
        """Group AggCOs whose downstream EdgeCO sets overlap enough."""
        downstream = {
            agg: {dst for dst in graph.successors(agg) if dst not in aggs}
            for agg in aggs
        }
        pairs = []
        ordered = sorted(aggs)
        for i, agg_x in enumerate(ordered):
            for agg_y in ordered[i + 1:]:
                set_x, set_y = downstream[agg_x], downstream[agg_y]
                if not set_x or not set_y:
                    continue
                overlap = set_x & set_y
                frac_x = len(overlap) / len(set_x)
                frac_y = len(overlap) / len(set_y)
                related = (
                    frac_x >= self.overlap_threshold
                    and frac_y >= self.reciprocal_threshold
                ) or (
                    frac_y >= self.overlap_threshold
                    and frac_x >= self.reciprocal_threshold
                )
                if related:
                    pairs.append((agg_x, agg_y))
        # Merge pairs transitively into ring groups.
        groups: "list[set[str]]" = []
        for agg_x, agg_y in pairs:
            merged = None
            for group in groups:
                if agg_x in group or agg_y in group:
                    group.update((agg_x, agg_y))
                    merged = group
                    break
            if merged is None:
                groups.append({agg_x, agg_y})
        grouped = set().union(*groups) if groups else set()
        groups.extend({agg} for agg in sorted(aggs - grouped))
        return groups

    def _complete_rings(self, graph: nx.DiGraph, aggs: "set[str]",
                        groups: "list[set[str]]", stats: RefineStats) -> None:
        for group in groups:
            if len(group) < 2:
                continue
            union_edges: "set[str]" = set()
            for agg in group:
                union_edges |= {
                    dst for dst in graph.successors(agg) if dst not in aggs
                }
            for agg in group:
                for dst in union_edges:
                    if not graph.has_edge(agg, dst):
                        graph.add_edge(agg, dst, weight=0, inferred=True)
                        stats.added_ring_edges += 1

    # -- the full refinement ---------------------------------------------
    def refine(self, region_name: str, adjacencies: Counter) -> RefinedRegion:
        """Run all three steps over one region's adjacency counter."""
        graph = nx.DiGraph()
        for (co_a, co_b), count in adjacencies.items():
            graph.add_edge(co_a, co_b, weight=count)
        stats = RefineStats(initial_edges=graph.number_of_edges())
        aggs = self.identify_agg_cos(graph)
        if self.remove_false_edges:
            self._remove_edge_to_edge(graph, aggs, stats)
        groups = self.pair_agg_cos(graph, aggs)
        if self.complete_rings:
            self._complete_rings(graph, aggs, groups, stats)
        stats.final_edges = graph.number_of_edges()
        edge_cos = set(graph.nodes) - aggs
        return RefinedRegion(
            name=region_name, graph=graph, agg_cos=aggs,
            edge_cos=edge_cos, agg_groups=groups, stats=stats,
        )
