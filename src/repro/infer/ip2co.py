"""IP address → CO mapping (Appendix B.1, Table 3).

Three stages, each tracked for the Table 3 churn accounting:

1. **Initial**: reverse-lookup every observed address (dig first, bulk
   snapshot second) plus every address in the same point-to-point
   subnet, and extract (region, CO tag) with the hostname regexes.
2. **Alias resolution**: remap whole alias sets to their majority CO
   tag; on a tie, drop the mapping rather than keep a conflicting one.
3. **Point-to-point subnets**: a router usually replies from the
   inbound interface, so the *other* address of that /30 or /31 sits on
   the previous-hop router; votes from those peer addresses correct or
   fill the previous hop's mapping (Fig 19).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.alias.resolve import AliasSets
from repro.measure.traceroute import TraceResult
from repro.net.dns import RdnsStore
from repro.perf.cache import normalize_address, p2p_peer_str
from repro.rdns.regexes import HostnameParser

CoRef = "tuple[str, str]"  # (region, co_tag)


@dataclass(frozen=True)
class CoConflict:
    """One IP claimed by multiple COs with no majority — the paper's
    stale-rDNS signature (App. B.1).  ``dropped`` records whether the
    conflict cost the address its mapping (alias ties do; p2p ties
    merely fail to correct)."""

    address: str
    #: The competing (region, co_tag) claims, sorted for determinism.
    candidates: "tuple[tuple[str, str], ...]"
    #: Which voting stage observed the conflict: alias-tie / p2p-tie.
    source: str
    dropped: bool = True


@dataclass
class Ip2CoStats:
    """Churn accounting in the shape of Table 3."""

    initial: int = 0
    alias_changed: int = 0
    alias_added: int = 0
    alias_removed: int = 0
    after_alias: int = 0
    p2p_changed: int = 0
    p2p_added: int = 0
    final: int = 0

    def as_rows(self) -> "list[tuple[str, str]]":
        """Render the Table 3 rows (percentages relative to `initial`)."""
        def pct(n: int) -> str:
            return f"{100.0 * n / self.initial:.2f}%" if self.initial else "0.00%"

        return [
            ("Initial", f"{self.initial}"),
            ("Alias changed", pct(self.alias_changed)),
            ("Alias added", pct(self.alias_added)),
            ("Alias removed", pct(self.alias_removed)),
            ("After alias", f"{self.after_alias}"),
            ("P2P changed", pct(self.p2p_changed)),
            ("P2P added", pct(self.p2p_added)),
            ("Final", f"{self.final}"),
        ]


@dataclass
class Ip2CoMapping:
    """The resolved address → (region, co_tag) mapping."""

    mapping: "dict[str, CoRef]" = field(default_factory=dict)
    stats: Ip2CoStats = field(default_factory=Ip2CoStats)
    #: Conflicting observations seen while voting (quarantine fodder).
    conflicts: "list[CoConflict]" = field(default_factory=list)

    def co_of(self, address: "str | None") -> "Optional[CoRef]":
        if address is None:
            return None
        return self.mapping.get(address)

    def __len__(self) -> int:
        return len(self.mapping)


class Ip2CoMapper:
    """Runs the three B.1 stages over a traceroute corpus."""

    def __init__(self, rdns: RdnsStore, isp: str, p2p_prefixlen: int = 30,
                 parser: "HostnameParser | None" = None, cache=None) -> None:
        self.rdns = rdns
        self.isp = isp
        self.p2p_prefixlen = p2p_prefixlen
        self.parser = parser or HostnameParser()
        #: Shared :class:`~repro.perf.cache.InferenceCache`; optional —
        #: a bare mapper works against the store directly.
        self.cache = cache

    # -- stage 1 -----------------------------------------------------------
    def _lookup_co(self, address: str) -> "Optional[CoRef]":
        if self.cache is not None:
            return self.cache.regional_co(address, self.isp)
        return self.parser.regional_co(self.rdns.lookup(address), self.isp)

    def observed_addresses(self, traces: "list[TraceResult]") -> "set[str]":
        """All responding hop addresses plus their p2p-subnet peers."""
        addresses: set[str] = set()
        for trace in traces:
            for hop in trace.hops:
                if hop.address is None:
                    continue
                addresses.add(hop.address)
                peer = p2p_peer_str(hop.address, self.p2p_prefixlen)
                if peer is not None:
                    addresses.add(peer)
        return addresses

    def observed_addresses_columnar(self, corpus) -> "set[str]":
        """:meth:`observed_addresses` over a columnar corpus.

        The p2p-peer derivation runs once per *unique* responding
        address (one ``np.unique`` over the hop column) instead of once
        per hop occurrence.
        """
        from repro.corpus.columnar import responding_address_ids

        addresses: set[str] = set()
        table = corpus.addresses
        for addr_id in responding_address_ids(corpus):
            address = table[int(addr_id)]
            addresses.add(address)
            peer = p2p_peer_str(address, self.p2p_prefixlen)
            if peer is not None:
                addresses.add(peer)
        return addresses

    def initial_mapping(self, addresses: "set[str]") -> "dict[str, CoRef]":
        mapping = {}
        for address in sorted(addresses):
            co = self._lookup_co(address)
            if co is not None:
                mapping[address] = co
        return mapping

    # -- stage 2 -----------------------------------------------------------
    def _apply_alias_groups(
        self, mapping: "dict[str, CoRef]", aliases: AliasSets,
        stats: Ip2CoStats, conflicts: "list[CoConflict]",
    ) -> None:
        for group in aliases.groups:
            votes: Counter = Counter()
            for address in group:
                co = mapping.get(address) or self._lookup_co(address)
                if co is not None:
                    votes[co] += 1
            if not votes:
                continue
            ranked = votes.most_common()
            top_co, top_count = ranked[0]
            tie = len(ranked) > 1 and ranked[1][1] == top_count
            tied_cos = tuple(
                sorted(co for co, n in ranked if n == top_count)
            ) if tie else ()
            for address in group:
                if tie:
                    # Conflicting evidence with no majority: drop rather
                    # than risk a wrong building (App. B.1).
                    if address in mapping:
                        del mapping[address]
                        stats.alias_removed += 1
                        conflicts.append(CoConflict(
                            address=address, candidates=tied_cos,
                            source="alias-tie", dropped=True,
                        ))
                    continue
                old = mapping.get(address)
                if old is None:
                    mapping[address] = top_co
                    stats.alias_added += 1
                elif old != top_co:
                    mapping[address] = top_co
                    stats.alias_changed += 1

    # -- stage 3 -----------------------------------------------------------
    def _apply_p2p_votes(
        self,
        mapping: "dict[str, CoRef]",
        traces: "list[TraceResult]",
        stats: Ip2CoStats,
        conflicts: "list[CoConflict]",
    ) -> None:
        votes: "dict[str, Counter]" = {}
        for trace in traces:
            for prev_addr, cur_addr in trace.adjacent_pairs(exclude_final_echo=True):
                peer = p2p_peer_str(cur_addr, self.p2p_prefixlen)
                if peer is None:
                    continue
                peer_co = mapping.get(peer)
                if peer_co is None:
                    continue
                # The peer of the inbound interface most likely sits on
                # the previous-hop router (Fig 19).
                votes.setdefault(prev_addr, Counter())[peer_co] += 1
        self._resolve_p2p_votes(mapping, votes, stats, conflicts)

    def _apply_p2p_votes_columnar(
        self,
        mapping: "dict[str, CoRef]",
        corpus,
        stats: Ip2CoStats,
        conflicts: "list[CoConflict]",
    ) -> None:
        """Stage 3 over columnar pair counts.

        Votes aggregate from unique-pair counts (pairs emitted in
        first-occurrence order, so the votes dict — and therefore the
        conflicts list — is ordered exactly as the object path's).
        Vote *application* is order-independent per address: votes are
        collected in one read-only pass before any mapping mutation.
        """
        from repro.corpus.columnar import adjacent_pair_counts

        table = corpus.addresses
        votes: "dict[str, Counter]" = {}
        for first, second, count in adjacent_pair_counts(
            corpus, exclude_final_echo=True
        ):
            peer = p2p_peer_str(table[second], self.p2p_prefixlen)
            if peer is None:
                continue
            peer_co = mapping.get(peer)
            if peer_co is None:
                continue
            votes.setdefault(table[first], Counter())[peer_co] += count
        self._resolve_p2p_votes(mapping, votes, stats, conflicts)

    def _resolve_p2p_votes(
        self,
        mapping: "dict[str, CoRef]",
        votes: "dict[str, Counter]",
        stats: Ip2CoStats,
        conflicts: "list[CoConflict]",
    ) -> None:
        for address, counter in votes.items():
            ranked = counter.most_common()
            top_co, top_count = ranked[0]
            if len(ranked) > 1 and ranked[1][1] == top_count:
                # Tied peer votes: the correction fails but the existing
                # mapping (if any) survives — record, don't drop.
                conflicts.append(CoConflict(
                    address=address,
                    candidates=tuple(sorted(
                        co for co, n in ranked if n == top_count
                    )),
                    source="p2p-tie", dropped=False,
                ))
                continue
            old = mapping.get(address)
            if old is None:
                mapping[address] = top_co
                stats.p2p_added += 1
            elif old != top_co and counter[top_co] > counter.get(old, 0):
                mapping[address] = top_co
                stats.p2p_changed += 1

    # -- the full run --------------------------------------------------------
    def build(self, traces: "list[TraceResult]", aliases: AliasSets,
              extra_addresses: "set[str] | None" = None) -> Ip2CoMapping:
        """Run all three stages; *extra_addresses* joins stage 1's input
        (e.g. every rDNS-bearing address of the ISP, §5.1)."""
        stats = Ip2CoStats()
        addresses = self.observed_addresses(traces)
        if extra_addresses:
            addresses |= {normalize_address(a) for a in extra_addresses}
        mapping = self.initial_mapping(addresses)
        stats.initial = len(mapping)
        conflicts: "list[CoConflict]" = []
        self._apply_alias_groups(mapping, aliases, stats, conflicts)
        stats.after_alias = len(mapping)
        self._apply_p2p_votes(mapping, traces, stats, conflicts)
        stats.final = len(mapping)
        return Ip2CoMapping(mapping=mapping, stats=stats, conflicts=conflicts)

    def build_columnar(self, corpus, aliases: AliasSets,
                       extra_addresses: "set[str] | None" = None) -> Ip2CoMapping:
        """:meth:`build` over a columnar corpus.

        Stages 1 and 3 read the hop columns directly (unique responding
        addresses, vectorized pair counts); stage 2 is already
        per-alias-group and shared verbatim.  Output is identical to
        ``build(corpus.to_traces(), ...)`` — the object path stays the
        parity oracle.
        """
        stats = Ip2CoStats()
        addresses = self.observed_addresses_columnar(corpus)
        if extra_addresses:
            addresses |= {normalize_address(a) for a in extra_addresses}
        mapping = self.initial_mapping(addresses)
        stats.initial = len(mapping)
        conflicts: "list[CoConflict]" = []
        self._apply_alias_groups(mapping, aliases, stats, conflicts)
        stats.after_alias = len(mapping)
        self._apply_p2p_votes_columnar(mapping, corpus, stats, conflicts)
        stats.final = len(mapping)
        return Ip2CoMapping(mapping=mapping, stats=stats, conflicts=conflicts)
