"""Entry-point inference (§5.2.5).

Adds back edges that cross regional boundaries — backbone entry points
and direct inter-region connections — but only on overwhelming
evidence: the outside CO must appear leading into **two or more**
distinct COs of the region (stale-rDNS protection), and the entry must
lead onward into the region (the triplet rule).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.infer.adjacency import RegionAdjacencies
from repro.infer.ip2co import Ip2CoMapping
from repro.measure.traceroute import TraceResult


@dataclass(frozen=True)
class EntryPoint:
    """One inferred entry: outside CO → a CO of the region."""

    outside_tag: str
    #: "" when the entry comes from the backbone; otherwise the name of
    #: the neighbouring region it comes from.
    outside_region: str
    region: str
    co_tag: str

    @property
    def is_backbone(self) -> bool:
        return self.outside_region == ""


class EntryInferrer:
    """Backbone + inter-region entry inference from the corpora."""

    def __init__(self, mapping: Ip2CoMapping, min_distinct_cos: int = 2) -> None:
        self.mapping = mapping
        self.min_distinct_cos = min_distinct_cos

    def backbone_entries(self, adjacencies: RegionAdjacencies) -> "list[EntryPoint]":
        """Backbone entry points from the set-aside backbone adjacencies."""
        leads: "dict[tuple[str, str], set[str]]" = {}
        for (bb_tag, region, co_tag), _count in adjacencies.backbone_pairs.items():
            leads.setdefault((bb_tag, region), set()).add(co_tag)
        entries = []
        for (bb_tag, region), co_tags in sorted(leads.items()):
            for co_tag in sorted(co_tags):
                entries.append(EntryPoint(bb_tag, "", region, co_tag))
        return entries

    def inter_region_entries(self, traces: "list[TraceResult]") -> "list[EntryPoint]":
        """Direct inter-region entries via the triplet rule.

        Extract triplets ``(co_i, r1) → (co_j, r2) → (co_k, r2)`` with
        r1 ≠ r2; the onward hop inside r2 shows the entry actually leads
        into the region.  An entry is kept only when observed leading to
        ≥ ``min_distinct_cos`` distinct COs of r2.
        """
        onward: "dict[tuple[str, str, str, str], set[str]]" = {}
        for trace in traces:
            mapped = [
                self.mapping.co_of(address)
                for address in trace.responsive_addresses()
            ]
            for first, second, third in zip(mapped, mapped[1:], mapped[2:]):
                if first is None or second is None or third is None:
                    continue
                r1, tag_i = first
                r2, tag_j = second
                r3, tag_k = third
                if r1 == r2 or r2 != r3 or tag_j == tag_k:
                    continue
                onward.setdefault((r1, tag_i, r2, tag_j), set()).add(tag_k)
        entries = []
        for (r1, tag_i, r2, tag_j), led_to in sorted(onward.items()):
            if len(led_to) >= self.min_distinct_cos - 1:
                entries.append(EntryPoint(tag_i, r1, r2, tag_j))
        return entries

    @staticmethod
    def backbone_entry_count(entries: "list[EntryPoint]") -> "dict[str, int]":
        """Distinct backbone entry points per region (the 57-entries stat)."""
        per_region: "dict[str, set]" = {}
        for entry in entries:
            if entry.is_backbone:
                per_region.setdefault(entry.region, set()).add(
                    (entry.outside_tag, entry.co_tag)
                )
        return {region: len(points) for region, points in per_region.items()}

    @staticmethod
    def backbone_cos_per_region(entries: "list[EntryPoint]") -> "dict[str, int]":
        """Distinct backbone COs feeding each region (the ≥2 check)."""
        per_region: "dict[str, set]" = {}
        for entry in entries:
            if entry.is_backbone:
                per_region.setdefault(entry.region, set()).add(entry.outside_tag)
        return {region: len(tags) for region, tags in per_region.items()}
