"""Inference-side guardrails: schemas, invariants, and quarantine.

Three layers, each usable on its own:

* :mod:`repro.validate.schema` — typed schemas for every JSON artifact
  the repo reads or writes; :class:`~repro.errors.SchemaError`
  diagnostics that name the offending JSON path.
* :mod:`repro.validate.invariants` — :class:`InvariantGuard`, the
  per-stage structural checks wired into the §5 pipeline.
* :mod:`repro.validate.quarantine` — :class:`QuarantineReport`, where
  conflicting observations are diverted instead of silently vanishing.
"""

from repro.validate.invariants import InvariantGuard
from repro.validate.quarantine import (
    POLICIES,
    QuarantineRecord,
    QuarantineReport,
    quarantine_report_from_json,
    quarantine_report_to_json,
)
from repro.validate.schema import (
    ANY,
    ARTIFACT_SCHEMAS,
    ARTIFACT_VERSIONS,
    ListOf,
    MapOf,
    Opt,
    artifact_kind,
    check,
    parse_artifact,
    validate_artifact,
)

__all__ = [
    "ANY",
    "ARTIFACT_SCHEMAS",
    "ARTIFACT_VERSIONS",
    "InvariantGuard",
    "ListOf",
    "MapOf",
    "Opt",
    "POLICIES",
    "QuarantineRecord",
    "QuarantineReport",
    "artifact_kind",
    "check",
    "parse_artifact",
    "quarantine_report_from_json",
    "quarantine_report_to_json",
    "validate_artifact",
]
