"""Typed schemas for every JSON artifact the repo reads or writes.

The paper's pipeline consumes data that disagrees with itself — stale
rDNS, conflicting alias evidence, snapshots that lag the live zone
(§4–§5, App. B) — so every artifact that crosses a process boundary is
validated *structurally* before any field is trusted.  A failed check
raises :class:`~repro.errors.SchemaError` whose message names the JSON
path of the offending value (``$.edges[3].observations: expected int,
got str``) instead of the raw ``KeyError``/``TypeError`` an ad-hoc
``payload["..."]`` access would produce.

The schema language is deliberately tiny: a spec is a Python type (or
tuple of types), a nested ``dict`` schema, :class:`ListOf`,
:class:`MapOf` (string-keyed objects), :class:`Opt` (optional key), or
the :data:`ANY` sentinel.  ``bool`` is *not* accepted where ``int`` is
expected, mirroring how JSON distinguishes the two.
"""

from __future__ import annotations

import json

from repro.errors import SchemaError

#: Current version of every artifact kind this repo emits.
ARTIFACT_VERSIONS = {
    "cable-region": 1,
    "telco-region": 1,
    "mobile-carrier": 1,
    "campaign-health": 1,
    "campaign-checkpoint": 1,
    "quarantine-report": 1,
    "run-manifest": 1,
    "job-spec": 1,
    "job-record": 1,
    "service-snapshot": 1,
    "trace-corpus": 1,
    "topology-diff": 1,
    "job-events": 1,
    "bias-report": 1,
}


class ListOf:
    """A JSON array whose items all match *item*."""

    def __init__(self, item) -> None:
        self.item = item


class MapOf:
    """A JSON object with arbitrary string keys and *value*-typed values."""

    def __init__(self, value) -> None:
        self.value = value


class Opt:
    """A dict key that may be absent (but must match *spec* if present)."""

    def __init__(self, spec) -> None:
        self.spec = spec


#: Matches anything (for free-form sub-documents like fault stats).
ANY = object()

_NoneType = type(None)

_TYPE_NAMES = {
    str: "string", int: "int", float: "number", bool: "bool",
    dict: "object", list: "array", _NoneType: "null",
}


def _describe(value) -> str:
    return _TYPE_NAMES.get(type(value), type(value).__name__)


def _matches_type(value, expected) -> bool:
    if expected is float:
        # JSON "number": an int is an acceptable float.
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if expected is int:
        # JSON distinguishes true/1; so do we.
        return isinstance(value, int) and not isinstance(value, bool)
    return isinstance(value, expected)


def _expected_name(spec) -> str:
    if isinstance(spec, tuple):
        return " or ".join(_TYPE_NAMES.get(t, t.__name__) for t in spec)
    return _TYPE_NAMES.get(spec, getattr(spec, "__name__", str(spec)))


def check(value, spec, path: str = "$") -> None:
    """Validate *value* against *spec*, raising :class:`SchemaError`.

    The error message always starts with the JSON path of the offending
    value, so a diagnostic can be surfaced as a single line.
    """
    if spec is ANY:
        return
    if isinstance(spec, Opt):
        spec = spec.spec
    if isinstance(spec, dict):
        if not isinstance(value, dict):
            raise SchemaError(f"{path}: expected object, got {_describe(value)}")
        for key, subspec in spec.items():
            if key not in value:
                if isinstance(subspec, Opt):
                    continue
                raise SchemaError(f"{path}.{key}: missing required field")
            check(value[key], subspec, f"{path}.{key}")
        return
    if isinstance(spec, ListOf):
        if not isinstance(value, list):
            raise SchemaError(f"{path}: expected array, got {_describe(value)}")
        for index, item in enumerate(value):
            check(item, spec.item, f"{path}[{index}]")
        return
    if isinstance(spec, MapOf):
        if not isinstance(value, dict):
            raise SchemaError(f"{path}: expected object, got {_describe(value)}")
        for key, item in value.items():
            if not isinstance(key, str):
                raise SchemaError(f"{path}: non-string key {key!r}")
            check(item, spec.value, f"{path}.{key}")
        return
    if isinstance(spec, tuple) and any(not isinstance(t, type) for t in spec):
        # A union with structured alternatives (e.g. an object spec or
        # null): accept the first alternative that validates.
        errors = []
        for alternative in spec:
            try:
                check(value, alternative, path)
                return
            except SchemaError as exc:
                errors.append(str(exc))
        raise SchemaError(
            f"{path}: no union alternative matched ({'; '.join(errors)})"
        )
    expected = spec if isinstance(spec, tuple) else (spec,)
    if not any(_matches_type(value, t) for t in expected):
        raise SchemaError(
            f"{path}: expected {_expected_name(spec)}, got {_describe(value)}"
        )


# ----------------------------------------------------------------------
# Per-kind artifact schemas
# ----------------------------------------------------------------------
_REGION_STATS = {
    "initial_edges": int,
    "removed_edge_edges": int,
    "added_ring_edges": int,
    "final_edges": int,
}

_CABLE_REGION = {
    "schema": int,
    "kind": str,
    "name": str,
    "agg_cos": ListOf(str),
    "edge_cos": ListOf(str),
    "agg_groups": ListOf(ListOf(str)),
    "edges": ListOf({
        "from": str,
        "to": str,
        "observations": int,
        "inferred": bool,
    }),
    "stats": _REGION_STATS,
}

_TELCO_REGION = {
    "schema": int,
    "kind": str,
    "region": str,
    "backbone_routers": ListOf(ListOf(str)),
    "agg_routers": ListOf(ListOf(str)),
    "edge_routers": ListOf(ListOf(str)),
    "edge_cos": ListOf(ListOf(str)),
    "edge_prefixes": ListOf(str),
    "agg_prefixes": ListOf(str),
    "backbone_fully_meshed": bool,
    "backbone_co_count": int,
    "router_edges": ListOf(ListOf(str)),
}

_BITFIELD_REPORT = {
    "prefix_bits": int,
    "geo_fields": ListOf(ListOf(int)),
    "cycling_fields": ListOf(ListOf(int)),
    "subscriber_fields": ListOf(ListOf(int)),
}

_MOBILE_CARRIER = {
    "schema": int,
    "kind": str,
    "carrier": str,
    "user_report": _BITFIELD_REPORT,
    "hop_reports": MapOf(_BITFIELD_REPORT),
    "region_count": int,
    "pgw_counts": MapOf(int),
    "backbone_providers": ListOf(str),
    "topology_class": str,
}

_CAMPAIGN_HEALTH = {
    "schema": int,
    "kind": str,
    "health": {
        "probes_sent": int,
        "probes_lost": int,
        "probes_refused": int,
        "probes_retried": int,
        "backoff_ms_total": float,
        "traces_run": int,
        "empty_traces": int,
        "vps_lost": ListOf(str),
        "vp_flap_retries": int,
        "targets_reassigned": int,
        "targets_skipped": int,
        "resumed": bool,
        "interrupted": bool,
        "degraded": bool,
        "shards_planned": Opt(int),
        "shards_reused": Opt(int),
        "shards_retried": Opt(int),
        "shards_poisoned": Opt(int),
        "workers_spawned": Opt(int),
        "workers_crashed": Opt(int),
        "workers_stalled": Opt(int),
        "workers_slow": Opt(int),
        "fault_stats": MapOf(ANY),
    },
}

_CHECKPOINT_HOP = {
    "i": int,
    "addr": (str, _NoneType),
    "rdns": Opt((str, _NoneType)),
    "rtt": Opt((float, _NoneType)),
    "rttl": Opt((int, _NoneType)),
    "tries": Opt(int),
}

_CHECKPOINT_TRACE = {
    "src": str,
    "dst": str,
    "completed": Opt(bool),
    "flow_id": Opt(int),
    "vp": Opt(str),
    "hops": ListOf(_CHECKPOINT_HOP),
}

_CAMPAIGN_CHECKPOINT = {
    "schema": int,
    "kind": str,
    "stages": MapOf({
        "complete": bool,
        "done": ListOf(ListOf(str)),
        "traces": ListOf(_CHECKPOINT_TRACE),
        # Binary-corpus stages store traces in an .npz sidecar instead
        # of inline JSON; the stage record carries the pointer + digest.
        "corpus": Opt({
            "format": str,
            "file": str,
            "sha256": str,
        }),
    }),
    "health": MapOf(ANY),
    "injector": MapOf(ANY),
    "shards": Opt(MapOf(MapOf(ANY))),
}

_QUARANTINE_REPORT = {
    "schema": int,
    "kind": str,
    "policy": str,
    "records": ListOf({
        "stage": str,
        "category": str,
        "subject": str,
        "detail": str,
        "region": (str, _NoneType),
        "dropped": bool,
        "count": int,
    }),
    "counts": MapOf(int),
}

_RUN_MANIFEST = {
    "schema": int,
    "kind": str,
    "environment": {
        "python": str,
        "implementation": str,
        "platform": str,
        "package": str,
    },
    "invocation": {
        "command": str,
        "seed": int,
        "parameters": MapOf(ANY),
    },
    "fault_plan_digest": (str, _NoneType),
    "stages": ListOf({
        "name": str,
        "duration_s": float,
        "spans": int,
        "status": str,
    }),
    "span_count": int,
    "metrics": {
        "counters": MapOf(float),
        "gauges": MapOf(float),
        "histograms": MapOf(MapOf(float)),
    },
    "artifacts": MapOf({
        "sha256": str,
        "bytes": Opt(int),
    }),
}

_JOB_SPEC = {
    "schema": int,
    "kind": str,
    "name": Opt(str),
    "pipeline": str,
    "seed": int,
    "priority": Opt(int),
    "fidelity": str,
    "allow_degraded": bool,
    "workers": int,
    "targets": Opt(int),
    "hosts": Opt(int),
    "isp": Opt(str),
    "sweep_vps": Opt(int),
    "faults": MapOf(ANY),
    "chaos": Opt({"fail_attempts": Opt(int)}),
    "corpus_format": Opt(str),
}

_JOB_RECORD = {
    "schema": int,
    "kind": str,
    "job_id": str,
    "spec_hash": str,
    "spec": _JOB_SPEC,
    "state": str,
    "fidelity": str,
    "attempts": int,
    "attempt_log": ListOf({
        "attempt": int,
        "executor": str,
        "fidelity": str,
        "outcome": str,
        "error": (str, _NoneType),
        "degraded": bool,
        "started_at": float,
        "finished_at": (float, _NoneType),
    }),
    "not_before": float,
    "lease": (
        {"owner": str, "expires_at": float, "token": Opt(int)},
        _NoneType,
    ),
    "artifacts": MapOf({
        "sha256": str,
        "bytes": Opt(int),
    }),
    "failure": ({"reason": str, "artifact": (str, _NoneType)}, _NoneType),
    "submitted_seq": int,
    "dedup_count": int,
    "events": Opt(ListOf({
        "seq": int,
        "op": str,
        "at": float,
        "detail": Opt(str),
    })),
}

_TRACE_CORPUS = {
    "schema": int,
    "kind": str,
    "traces": ListOf(_CHECKPOINT_TRACE),
}

# Cross-version topology delta served by ``GET /jobs/<a>/diff/<b>``:
# COs are responding addresses, links are adjacent responding pairs,
# both derived from the columnar corpus of each job's ``corpus``
# artifact (see :mod:`repro.service.diff`).
_TOPOLOGY_DIFF = {
    "schema": int,
    "kind": str,
    "base_job": str,
    "other_job": str,
    "cos_added": ListOf(str),
    "cos_removed": ListOf(str),
    "links_added": ListOf(ListOf(str)),
    "links_removed": ListOf(ListOf(str)),
    "counts": {
        "base_cos": int,
        "other_cos": int,
        "base_links": int,
        "other_links": int,
    },
}

# The polling view over a job's journal-event ring, cursor = max seq.
_JOB_EVENTS = {
    "schema": int,
    "kind": str,
    "job_id": str,
    "cursor": int,
    "events": ListOf({
        "seq": int,
        "op": str,
        "at": float,
        "detail": Opt(str),
    }),
}

_SERVICE_SNAPSHOT = {
    "schema": int,
    "kind": str,
    "seq": int,
    "jobs": MapOf(_JOB_RECORD),
    "rejected": ListOf({
        "spec_hash": str,
        "reason": str,
        "at": float,
    }),
}

# One bias-lab run: species estimates scored against ground truth,
# optimized-vs-random VP placement, and streaming/batch digest parity
# (see :mod:`repro.bias.report`).  CI gates on this artifact.
_SPECIES_SECTION = {
    "observed": int,
    "f1": int,
    "f2": int,
    "chao1": float,
    "unseen": float,
    "coverage": float,
    "n": int,
    "truth": int,
    "relative_error": float,
}

_BIAS_REPORT = {
    "schema": int,
    "kind": str,
    "isp": str,
    "seed": int,
    "route_model": str,
    "vp_count": int,
    "targets": int,
    "species": {
        "cos": _SPECIES_SECTION,
        "links": _SPECIES_SECTION,
    },
    "placement": {
        "k": int,
        "chosen": ListOf(str),
        "covered_edges": int,
        "total_edges": int,
        "edge_recall": float,
        "random_recall": float,
        "random_trials": int,
        "marginal_gains": ListOf(int),
    },
    "streaming": {
        "traces": int,
        "digest": str,
        "parity": bool,
        "ingest_seconds": float,
        "batch_seconds": float,
        "epoch_changes": int,
    },
}

ARTIFACT_SCHEMAS = {
    "cable-region": _CABLE_REGION,
    "telco-region": _TELCO_REGION,
    "mobile-carrier": _MOBILE_CARRIER,
    "campaign-health": _CAMPAIGN_HEALTH,
    "campaign-checkpoint": _CAMPAIGN_CHECKPOINT,
    "quarantine-report": _QUARANTINE_REPORT,
    "run-manifest": _RUN_MANIFEST,
    "job-spec": _JOB_SPEC,
    "job-record": _JOB_RECORD,
    "service-snapshot": _SERVICE_SNAPSHOT,
    "trace-corpus": _TRACE_CORPUS,
    "topology-diff": _TOPOLOGY_DIFF,
    "job-events": _JOB_EVENTS,
    "bias-report": _BIAS_REPORT,
}


# ----------------------------------------------------------------------
# Artifact entry points
# ----------------------------------------------------------------------
def artifact_kind(payload) -> str:
    """The ``kind`` tag of a parsed artifact (SchemaError when absent)."""
    if not isinstance(payload, dict):
        raise SchemaError(f"$: expected object, got {_describe(payload)}")
    kind = payload.get("kind")
    if not isinstance(kind, str):
        raise SchemaError("$.kind: missing or non-string artifact kind")
    return kind


def validate_artifact(payload, kind: "str | None" = None) -> dict:
    """Validate a parsed JSON document as one of the known artifacts.

    *kind* pins the expected artifact kind; None accepts any known one.
    Returns the payload unchanged so call sites can chain.
    """
    found = artifact_kind(payload)
    if kind is not None and found != kind:
        raise SchemaError(f"$.kind: expected {kind!r}, got {found!r}")
    schema = ARTIFACT_SCHEMAS.get(found)
    if schema is None:
        raise SchemaError(f"$.kind: unknown artifact kind {found!r}")
    version = payload.get("schema")
    if version != ARTIFACT_VERSIONS[found]:
        raise SchemaError(
            f"$.schema: unsupported {found} schema version {version!r}"
        )
    check(payload, schema)
    return payload


def parse_artifact(text: str, kind: "str | None" = None) -> dict:
    """``json.loads`` + :func:`validate_artifact`, SchemaError throughout."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SchemaError(f"$: not valid JSON: {exc}") from None
    return validate_artifact(payload, kind=kind)
