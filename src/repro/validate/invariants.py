"""Per-stage structural invariants of the §5 inference pipeline.

Each phase-2 stage is supposed to *establish* properties the next stage
relies on (App. B.1–B.3):

===========  ==========================================================
after ip2co  every observed IP maps to exactly one (region, CO);
             alias sets do not span COs (B.1's whole-group remap)
after adj.   no self-loop CO adjacencies; every surviving adjacency
             was observed at least once (§5.2.1 pruned singletons)
after refine AggCO/EdgeCO sets are disjoint and cover the graph;
             every ring group is a subset of the AggCO set; no
             EdgeCO→EdgeCO edge survives that B.3 should have removed
===========  ==========================================================

:class:`InvariantGuard` checks them under a configurable policy:
``strict`` raises :class:`~repro.errors.InvariantViolation` on the
first break (fail-fast, for CI and replayable campaigns); ``lenient``
repairs the output — dropping or reassigning the offending records —
and diverts each repair into a :class:`QuarantineReport`; ``off``
skips checking entirely (byte-identical to the unguarded pipeline).

Expected measurement noise the stages already handle (alias-tie drops,
cross-region prunes — the paper's stale-rDNS signatures) is *advisory*:
recorded in the report under every policy the guard runs in, but never
fatal, because the fault-free substrate produces some by design.
"""

from __future__ import annotations

from collections import Counter

from repro.errors import InferenceError, InvariantViolation
from repro.validate.quarantine import POLICIES, QuarantineReport


class InvariantGuard:
    """Checks one pipeline run's stage outputs under a policy."""

    def __init__(self, policy: str = "lenient",
                 report: "QuarantineReport | None" = None) -> None:
        if policy not in POLICIES:
            raise InferenceError(
                f"unknown validation policy {policy!r}; "
                f"expected one of {', '.join(POLICIES)}"
            )
        self.policy = policy
        self.report = report if report is not None else QuarantineReport(policy)

    @property
    def enabled(self) -> bool:
        return self.policy != "off"

    def publish_metrics(self, metrics, prefix: str = "validate.") -> None:
        """Publish quarantine totals (and per-category counts) as gauges."""
        metrics.set_gauge(f"{prefix}quarantined", len(self.report))
        metrics.set_gauge(f"{prefix}dropped", self.report.dropped_count())
        for key, count in self.report.counts().items():
            metrics.set_gauge(f"{prefix}records.{key}", count)

    # ------------------------------------------------------------------
    def _violation(self, stage: str, category: str, subject: str,
                   detail: str, region: "str | None" = None,
                   count: int = 1) -> None:
        """Fail fast under strict; drop-and-record under lenient."""
        if self.policy == "strict":
            where = f" [{region}]" if region else ""
            raise InvariantViolation(
                f"{stage}{where}: {category}: {subject}: {detail}"
            )
        self.report.add(stage, category, subject, detail, region=region,
                        dropped=True, count=count)

    # ------------------------------------------------------------------
    # Stage 1: IP→CO mapping (App. B.1)
    # ------------------------------------------------------------------
    def check_mapping(self, mapping, aliases=None) -> None:
        """Every IP maps to one well-formed CO; alias sets don't span COs.

        Under lenient, a spanning alias group keeps its majority CO and
        the dissenting members lose their mapping (the same drop B.1
        applies to tied votes); malformed COs are dropped outright.
        """
        if not self.enabled:
            return
        for conflict in getattr(mapping, "conflicts", []):
            claimants = ", ".join(
                f"{region}/{tag}" for region, tag in conflict.candidates
            )
            self.report.add(
                "ip2co", conflict.source, conflict.address,
                f"claimed by {claimants}", dropped=conflict.dropped,
            )
        for address in sorted(mapping.mapping):
            co = mapping.mapping[address]
            if (
                not isinstance(co, tuple) or len(co) != 2
                or not all(isinstance(part, str) and part for part in co)
            ):
                self._violation(
                    "ip2co", "malformed-co", address,
                    f"mapped to malformed CO reference {co!r}",
                )
                mapping.mapping.pop(address, None)
        if aliases is None:
            return
        for group in aliases.groups:
            cos = Counter(
                mapping.mapping[a] for a in group if a in mapping.mapping
            )
            if len(cos) <= 1:
                continue
            members = ", ".join(sorted(group))
            claimants = ", ".join(
                f"{region}/{tag}" for region, tag in sorted(cos)
            )
            self._violation(
                "ip2co", "alias-span", members,
                f"one router claimed by {claimants}",
            )
            ranked = cos.most_common()
            majority = (
                ranked[0][0]
                if len(ranked) == 1 or ranked[0][1] > ranked[1][1]
                else None
            )
            for address in sorted(group):
                if mapping.mapping.get(address) not in (None, majority):
                    del mapping.mapping[address]

    # ------------------------------------------------------------------
    # Stage 2: adjacency extraction (App. B.2, §5.2.1)
    # ------------------------------------------------------------------
    def check_adjacencies(self, adjacencies) -> None:
        """No self-loops; every surviving adjacency has weight ≥ 1."""
        if not self.enabled:
            return
        cross = getattr(adjacencies, "cross_region_pairs", None) or {}
        for (region_a, tag_a, region_b, tag_b), count in sorted(cross.items()):
            self.report.add(
                "adjacency", "cross-region", f"{tag_a}->{tag_b}",
                f"adjacency spans regions {region_a} and {region_b} "
                f"(stale-rDNS signature)",
                region=region_a, dropped=True, count=count,
            )
        for region in sorted(adjacencies.per_region):
            counter = adjacencies.per_region[region]
            for pair in sorted(counter):
                co_a, co_b = pair
                if co_a == co_b:
                    self._violation(
                        "adjacency", "self-loop", co_a,
                        "CO adjacent to itself", region=region,
                        count=counter[pair],
                    )
                    del counter[pair]
                elif counter[pair] < 1:
                    self._violation(
                        "adjacency", "non-positive-weight",
                        f"{co_a}->{co_b}",
                        f"adjacency observed {counter[pair]} times",
                        region=region,
                    )
                    del counter[pair]

    # ------------------------------------------------------------------
    # Stage 3: refinement (§5.2.2–§5.2.4, App. B.3)
    # ------------------------------------------------------------------
    def check_region(self, region) -> None:
        """Role partition, ring-group containment, no EdgeCO→EdgeCO edges."""
        if not self.enabled:
            return
        graph = region.graph
        nodes = set(graph.nodes)
        overlap = region.agg_cos & region.edge_cos
        for node in sorted(overlap):
            self._violation(
                "refine", "role-overlap", node,
                "CO classified both AggCO and EdgeCO", region=region.name,
            )
            region.edge_cos.discard(node)
        for role_set in (region.agg_cos, region.edge_cos):
            for node in sorted(role_set - nodes):
                self._violation(
                    "refine", "role-unknown-co", node,
                    "role assigned to a CO absent from the graph",
                    region=region.name,
                )
                role_set.discard(node)
        for node in sorted(nodes - region.agg_cos - region.edge_cos):
            self._violation(
                "refine", "role-uncovered", node,
                "CO has neither AggCO nor EdgeCO role", region=region.name,
            )
            region.edge_cos.add(node)
        for group in region.agg_groups:
            for node in sorted(group - region.agg_cos):
                self._violation(
                    "refine", "group-not-agg", node,
                    "ring group member is not an AggCO", region=region.name,
                )
                group.discard(node)
        region.agg_groups[:] = [group for group in region.agg_groups if group]
        self._check_edge_weights(region)
        self._check_edge_to_edge(region)

    def _check_edge_weights(self, region) -> None:
        graph = region.graph
        for a, b in sorted(graph.edges):
            data = graph.edges[a, b]
            if not data.get("inferred") and data.get("weight", 0) < 1:
                self._violation(
                    "refine", "non-positive-weight", f"{a}->{b}",
                    f"observed edge carries weight {data.get('weight', 0)}",
                    region=region.name,
                )
                graph.remove_edge(a, b)

    def _check_edge_to_edge(self, region) -> None:
        """Re-run B.3's removal predicate; survivors are violations.

        Mirrors :meth:`RegionRefiner._remove_edge_to_edge`, including
        the small-AggCO exception (a CO feeding ≥2 otherwise unreached
        COs is genuinely aggregating and keeps its edges).
        """
        graph = region.graph
        aggs = region.agg_cos
        agg_connected = {
            node for node in graph.nodes
            if any(pred in aggs for pred in graph.predecessors(node))
        }
        for src in sorted(set(graph.nodes) - aggs):
            out_edges = [dst for dst in graph.successors(src) if dst not in aggs]
            if not out_edges:
                continue
            orphans = [dst for dst in out_edges if dst not in agg_connected]
            if len(orphans) >= 2:
                continue
            for dst in sorted(out_edges):
                self._violation(
                    "refine", "edge-to-edge", f"{src}->{dst}",
                    "EdgeCO→EdgeCO edge survived B.3 false-edge removal",
                    region=region.name,
                )
                graph.remove_edge(src, dst)
