"""Record quarantine: where conflicting observations go to be studied.

The paper's inference stages silently *drop* conflicting evidence — an
alias set whose members vote for two different COs (App. B.1), an
adjacency that spans two regions (App. B.2's "overwhelmingly stale
rDNS") — because keeping it would place equipment in the wrong
building.  Dropping is the right call; dropping *invisibly* is not: a
production pipeline needs to know how much of its input was noise and
where it came from.  A :class:`QuarantineReport` collects every
diverted record with enough context to diagnose it, and serializes to a
versioned JSON artifact exported next to the topology artifacts it
qualifies.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.validate.schema import ARTIFACT_VERSIONS, parse_artifact

#: Valid validation policies, in decreasing order of strictness.
POLICIES = ("strict", "lenient", "off")


@dataclass
class QuarantineRecord:
    """One diverted observation or repaired invariant violation."""

    #: Pipeline stage that diverted it (``ip2co``, ``adjacency``, ``refine``).
    stage: str
    #: Short machine-readable class (``alias-tie``, ``cross-region``, ...).
    category: str
    #: What was quarantined (an address, a CO pair, a node name).
    subject: str
    #: Human-readable diagnosis.
    detail: str = ""
    #: Region the record belongs to, when regional.
    region: "str | None" = None
    #: Whether the offending data was removed from the pipeline output
    #: (False for advisory records where the conflict merely lost a vote).
    dropped: bool = True
    #: How many raw observations the record covers.
    count: int = 1

    def as_dict(self) -> "dict[str, object]":
        return {
            "stage": self.stage,
            "category": self.category,
            "subject": self.subject,
            "detail": self.detail,
            "region": self.region,
            "dropped": self.dropped,
            "count": self.count,
        }


@dataclass
class QuarantineReport:
    """Every record a validated pipeline run diverted, with counts."""

    policy: str = "lenient"
    records: "list[QuarantineRecord]" = field(default_factory=list)

    def add(self, stage: str, category: str, subject: str, detail: str = "",
            region: "str | None" = None, dropped: bool = True,
            count: int = 1) -> QuarantineRecord:
        record = QuarantineRecord(
            stage=stage, category=category, subject=subject, detail=detail,
            region=region, dropped=dropped, count=count,
        )
        self.records.append(record)
        return record

    def __len__(self) -> int:
        return len(self.records)

    def __bool__(self) -> bool:
        return bool(self.records)

    def dropped_count(self) -> int:
        return sum(1 for r in self.records if r.dropped)

    def counts(self) -> "dict[str, int]":
        """Record counts keyed ``stage/category`` (for the health line)."""
        out: "dict[str, int]" = {}
        for record in self.records:
            key = f"{record.stage}/{record.category}"
            out[key] = out.get(key, 0) + 1
        return dict(sorted(out.items()))

    def summary(self) -> str:
        """One human line for CLI output and logs."""
        if not self.records:
            return "0 quarantined"
        by_key = ", ".join(f"{k}: {n}" for k, n in self.counts().items())
        return (
            f"{len(self.records)} quarantined "
            f"({self.dropped_count()} dropped; {by_key})"
        )

    def as_dict(self) -> "dict[str, object]":
        return {
            "policy": self.policy,
            "records": [r.as_dict() for r in self.records],
            "counts": self.counts(),
        }


def quarantine_report_to_json(report: QuarantineReport) -> str:
    """Serialize a report as a versioned ``quarantine-report`` artifact."""
    payload = {
        "schema": ARTIFACT_VERSIONS["quarantine-report"],
        "kind": "quarantine-report",
        **report.as_dict(),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def quarantine_report_from_json(text: str) -> QuarantineReport:
    """Round-trip a serialized quarantine report (schema-validated)."""
    payload = parse_artifact(text, kind="quarantine-report")
    report = QuarantineReport(policy=payload["policy"])
    for entry in payload["records"]:
        report.add(
            stage=entry["stage"], category=entry["category"],
            subject=entry["subject"], detail=entry["detail"],
            region=entry["region"], dropped=entry["dropped"],
            count=entry["count"],
        )
    return report
