"""Columnar trace corpus: structured arrays for corpus-scale inference.

The paper's pipeline is corpus-scale by nature — millions of
traceroutes lifted into CO graphs — but every optimization so far
(memos, ``FollowupIndex``, ``InferenceCache``, the supervised worker
pool) worked *around* per-:class:`~repro.measure.traceroute.TraceResult`
Python object graphs.  This package is the representation those
optimizations were waiting for:

* :class:`~repro.corpus.columnar.TraceCorpus` — parallel numpy columns
  (``trace``-level src/dst/flow/vp plus CSR hop offsets; ``hop``-level
  ``hop_idx``/``addr_id``/``rtt``/``reply_ttl``/``attempts``) over
  interned address, hostname, and vantage-point string tables;
* :class:`~repro.corpus.columnar.CorpusBuilder` — the streaming
  ingestion side: append traces (or bare address paths) one at a time
  and materialize the arrays once;
* zero-copy contiguous slicing (:meth:`TraceCorpus.slice_traces`,
  :meth:`TraceCorpus.split`) so region and measurement shards share
  the hop columns instead of copying them;
* a lossless round-trip to and from ``list[TraceResult]`` — the object
  graph stays the digest-parity oracle for every vectorized path;
* :mod:`repro.corpus.binio` — a binary on-disk format (``.npz``)
  alongside the validated JSON interchange, both loaded through the
  PR-2 schema layer (:class:`~repro.errors.SchemaError`, never
  ``KeyError``).
"""

from repro.corpus.binio import (
    CORPUS_KIND,
    CORPUS_SCHEMA_VERSION,
    corpus_from_json,
    corpus_to_json,
    load_corpus,
    save_corpus,
)
from repro.corpus.columnar import (
    NO_REPLY_TTL,
    CorpusBuilder,
    StringTable,
    TraceCorpus,
    adjacent_pair_counts,
)

__all__ = [
    "CORPUS_KIND",
    "CORPUS_SCHEMA_VERSION",
    "CorpusBuilder",
    "NO_REPLY_TTL",
    "StringTable",
    "TraceCorpus",
    "adjacent_pair_counts",
    "corpus_from_json",
    "corpus_to_json",
    "load_corpus",
    "save_corpus",
]
