"""The columnar corpus representation and its vectorized primitives.

Layout
------

A :class:`TraceCorpus` holds two families of parallel numpy arrays plus
three interned string tables:

* **trace columns** (length ``T``): ``src_id``/``dst_id`` (address
  table ids), ``completed``, ``flow_id``, ``vp_id`` (vantage-point
  table id), and ``hop_offsets`` (length ``T + 1``, CSR row pointers
  into the hop columns — trace *t*'s hops are rows
  ``hop_offsets[t]:hop_offsets[t + 1]``);
* **hop columns** (length ``H``): ``hop_idx`` (the probe TTL,
  :attr:`~repro.measure.traceroute.Hop.index`), ``addr_id`` (``-1``
  for a silent ``*`` hop), ``rdns_id`` (``-1`` when no PTR was dug),
  ``rtt`` (``NaN`` when absent), ``reply_ttl`` (:data:`NO_REPLY_TTL`
  sentinel when absent), and ``attempts``.

Because traces are stored contiguously, slicing a *contiguous* trace
range is zero-copy: the hop columns of the slice are numpy views into
the parent's buffers and the string tables are shared by reference.
That is what makes per-region and per-worker sharding cheap — a shard
is an index range, not a copy.

The round-trip contract: ``TraceCorpus.from_traces(ts).to_traces()``
reproduces *ts* exactly (every ``Hop`` field, every ``TraceResult``
field), so the object-graph pipeline remains the digest-parity oracle
for every vectorized path built on these arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.measure.traceroute import Hop, TraceResult

#: Sentinel for an absent ``Hop.reply_ttl`` (any real value fits int32).
NO_REPLY_TTL = int(np.iinfo(np.int32).min)

#: Sentinel id for "no string" in the address / hostname columns.
NO_ID = -1


class StringTable:
    """An interning table: string ↔ dense int id, insertion-ordered."""

    __slots__ = ("strings", "_ids")

    def __init__(self, strings: "list[str] | None" = None) -> None:
        self.strings: "list[str]" = list(strings) if strings else []
        self._ids: "dict[str, int]" = {
            string: index for index, string in enumerate(self.strings)
        }

    def __len__(self) -> int:
        return len(self.strings)

    def __getitem__(self, index: int) -> str:
        return self.strings[index]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StringTable) and self.strings == other.strings

    def intern(self, string: str) -> int:
        """The id of *string*, assigning the next dense id if new."""
        found = self._ids.get(string)
        if found is None:
            found = len(self.strings)
            self._ids[string] = found
            self.strings.append(string)
        return found

    def intern_optional(self, string: "str | None") -> int:
        """Like :meth:`intern`, but maps None to :data:`NO_ID`."""
        if string is None:
            return NO_ID
        return self.intern(string)

    def get(self, string: str) -> "int | None":
        """The id of *string* if already interned."""
        return self._ids.get(string)


@dataclass
class TraceCorpus:
    """A traceroute corpus as parallel columns over interned tables."""

    addresses: StringTable = field(default_factory=StringTable)
    hostnames: StringTable = field(default_factory=StringTable)
    vps: StringTable = field(default_factory=StringTable)
    # -- trace columns (length T; hop_offsets is T + 1) -------------------
    src_id: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int32))
    dst_id: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int32))
    completed: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.bool_))
    flow_id: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64))
    vp_id: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int32))
    hop_offsets: np.ndarray = field(
        default_factory=lambda: np.zeros(1, dtype=np.int64))
    # -- hop columns (length H) -------------------------------------------
    hop_idx: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int32))
    addr_id: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int32))
    rdns_id: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int32))
    rtt: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.float64))
    reply_ttl: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int32))
    attempts: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int32))
    #: Lazy per-corpus derived-array cache (sorted pair keys, expanded
    #: trace ids).  Columns are never mutated after construction, so the
    #: cache is safe; slices and splits get a fresh one.
    _derived: dict = field(default_factory=dict, repr=False, compare=False)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.src_id.shape[0])

    @property
    def hop_count(self) -> int:
        return int(self.hop_idx.shape[0])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceCorpus):
            return NotImplemented
        return (
            self.addresses == other.addresses
            and self.hostnames == other.hostnames
            and self.vps == other.vps
            and all(
                np.array_equal(getattr(self, name), getattr(other, name),
                               equal_nan=(name == "rtt"))
                for name in _ARRAY_FIELDS
            )
        )

    # ------------------------------------------------------------------
    # Derived columns
    # ------------------------------------------------------------------
    def hop_trace_ids(self) -> np.ndarray:
        """Trace index of every hop row (derived from the CSR offsets)."""
        cached = self._derived.get("hop_trace_ids")
        if cached is None:
            counts = np.diff(self.hop_offsets)
            cached = np.repeat(np.arange(len(self), dtype=np.int64), counts)
            self._derived["hop_trace_ids"] = cached
        return cached

    def last_hop_rows(self) -> np.ndarray:
        """Hop-row index of each trace's final hop.

        For an *empty* trace the entry is ``offset - 1``, which aliases
        the previous trace's final row (or -1 at the corpus start) —
        callers must mask by ``np.diff(hop_offsets) > 0`` first.
        """
        return self.hop_offsets[1:] - 1

    # ------------------------------------------------------------------
    # Object-graph round trip (the parity oracle)
    # ------------------------------------------------------------------
    @classmethod
    def from_traces(cls, traces: "list[TraceResult]") -> "TraceCorpus":
        """Lift an object-graph corpus into columns (lossless)."""
        builder = CorpusBuilder()
        for trace in traces:
            builder.add_trace(trace)
        return builder.build()

    def to_traces(self) -> "list[TraceResult]":
        """Materialize the object-graph corpus back (lossless)."""
        addresses = self.addresses.strings
        hostnames = self.hostnames.strings
        vps = self.vps.strings
        traces: "list[TraceResult]" = []
        offsets = self.hop_offsets
        for t in range(len(self)):
            hops = []
            for row in range(int(offsets[t]), int(offsets[t + 1])):
                addr = self.addr_id[row]
                rdns = self.rdns_id[row]
                rtt = self.rtt[row]
                reply_ttl = self.reply_ttl[row]
                hops.append(Hop(
                    index=int(self.hop_idx[row]),
                    address=addresses[addr] if addr >= 0 else None,
                    rdns=hostnames[rdns] if rdns >= 0 else None,
                    rtt_ms=float(rtt) if not np.isnan(rtt) else None,
                    reply_ttl=(
                        int(reply_ttl) if reply_ttl != NO_REPLY_TTL else None
                    ),
                    attempts=int(self.attempts[row]),
                ))
            traces.append(TraceResult(
                src_address=addresses[self.src_id[t]],
                dst_address=addresses[self.dst_id[t]],
                hops=hops,
                completed=bool(self.completed[t]),
                flow_id=int(self.flow_id[t]),
                vp_name=vps[self.vp_id[t]],
            ))
        return traces

    # ------------------------------------------------------------------
    # Zero-copy sharding
    # ------------------------------------------------------------------
    def slice_traces(self, start: int, stop: int) -> "TraceCorpus":
        """A view over traces ``[start, stop)``.

        Hop and trace columns are numpy *views* into this corpus's
        buffers (zero-copy); only the ``T + 1`` offset vector is
        rebased.  The string tables are shared by reference, so ids in
        the slice resolve against the parent tables.
        """
        start = max(0, min(start, len(self)))
        stop = max(start, min(stop, len(self)))
        lo = int(self.hop_offsets[start])
        hi = int(self.hop_offsets[stop])
        return TraceCorpus(
            addresses=self.addresses,
            hostnames=self.hostnames,
            vps=self.vps,
            src_id=self.src_id[start:stop],
            dst_id=self.dst_id[start:stop],
            completed=self.completed[start:stop],
            flow_id=self.flow_id[start:stop],
            vp_id=self.vp_id[start:stop],
            hop_offsets=self.hop_offsets[start:stop + 1] - lo,
            hop_idx=self.hop_idx[lo:hi],
            addr_id=self.addr_id[lo:hi],
            rdns_id=self.rdns_id[lo:hi],
            rtt=self.rtt[lo:hi],
            reply_ttl=self.reply_ttl[lo:hi],
            attempts=self.attempts[lo:hi],
        )

    def split(self, shards: int) -> "list[TraceCorpus]":
        """Contiguous near-equal shards (the measurement-shard shape)."""
        shards = max(1, min(shards, max(1, len(self))))
        bounds = np.linspace(0, len(self), shards + 1).astype(int)
        return [
            self.slice_traces(int(bounds[i]), int(bounds[i + 1]))
            for i in range(shards)
        ]


#: Array fields of :class:`TraceCorpus`, with their expected dtypes —
#: shared by equality, the binary writer, and the validated loader.
_ARRAY_FIELDS: "dict[str, np.dtype]" = {
    "src_id": np.dtype(np.int32),
    "dst_id": np.dtype(np.int32),
    "completed": np.dtype(np.bool_),
    "flow_id": np.dtype(np.int64),
    "vp_id": np.dtype(np.int32),
    "hop_offsets": np.dtype(np.int64),
    "hop_idx": np.dtype(np.int32),
    "addr_id": np.dtype(np.int32),
    "rdns_id": np.dtype(np.int32),
    "rtt": np.dtype(np.float64),
    "reply_ttl": np.dtype(np.int32),
    "attempts": np.dtype(np.int32),
}


class CorpusBuilder:
    """Streaming corpus assembly: append traces, materialize once.

    This is the rewritten trace-accumulation hot path: generators and
    campaign runners append into plain Python lists (amortized O(1),
    no ``Hop``/``TraceResult`` objects required via :meth:`add_path`)
    and :meth:`build` converts to numpy in one shot.
    """

    def __init__(self) -> None:
        self.addresses = StringTable()
        self.hostnames = StringTable()
        self.vps = StringTable()
        self._src: "list[int]" = []
        self._dst: "list[int]" = []
        self._completed: "list[bool]" = []
        self._flow: "list[int]" = []
        self._vp: "list[int]" = []
        self._offsets: "list[int]" = [0]
        self._hop_idx: "list[int]" = []
        self._addr: "list[int]" = []
        self._rdns: "list[int]" = []
        self._rtt: "list[float]" = []
        self._reply_ttl: "list[int]" = []
        self._attempts: "list[int]" = []

    def __len__(self) -> int:
        return len(self._src)

    # ------------------------------------------------------------------
    def add_trace(self, trace: TraceResult) -> None:
        """Append one object-graph trace."""
        self._src.append(self.addresses.intern(trace.src_address))
        self._dst.append(self.addresses.intern(trace.dst_address))
        self._completed.append(trace.completed)
        self._flow.append(trace.flow_id)
        self._vp.append(self.vps.intern(trace.vp_name))
        for hop in trace.hops:
            self._hop_idx.append(hop.index)
            self._addr.append(self.addresses.intern_optional(hop.address))
            self._rdns.append(self.hostnames.intern_optional(hop.rdns))
            self._rtt.append(hop.rtt_ms if hop.rtt_ms is not None else np.nan)
            self._reply_ttl.append(
                hop.reply_ttl if hop.reply_ttl is not None else NO_REPLY_TTL
            )
            self._attempts.append(hop.attempts)
        self._offsets.append(len(self._hop_idx))

    def add_path(self, src_address: str, dst_address: str,
                 path: "list[str]", completed: bool = False,
                 flow_id: int = 0, vp_name: str = "") -> None:
        """Append a fully-responsive address path without building objects.

        Matches ``TraceResult(src, dst, [Hop(i + 1, addr) ...])`` — the
        shape every synthetic generator and wire decoder produces —
        at a fraction of the allocation cost.
        """
        self._src.append(self.addresses.intern(src_address))
        self._dst.append(self.addresses.intern(dst_address))
        self._completed.append(completed)
        self._flow.append(flow_id)
        self._vp.append(self.vps.intern(vp_name))
        intern = self.addresses.intern
        for index, address in enumerate(path):
            self._hop_idx.append(index + 1)
            self._addr.append(intern(address))
            self._rdns.append(NO_ID)
            self._rtt.append(np.nan)
            self._reply_ttl.append(NO_REPLY_TTL)
            self._attempts.append(1)
        self._offsets.append(len(self._hop_idx))

    # ------------------------------------------------------------------
    def build(self) -> TraceCorpus:
        """Materialize the accumulated columns as a :class:`TraceCorpus`."""
        return TraceCorpus(
            addresses=self.addresses,
            hostnames=self.hostnames,
            vps=self.vps,
            src_id=np.asarray(self._src, dtype=np.int32),
            dst_id=np.asarray(self._dst, dtype=np.int32),
            completed=np.asarray(self._completed, dtype=np.bool_),
            flow_id=np.asarray(self._flow, dtype=np.int64),
            vp_id=np.asarray(self._vp, dtype=np.int32),
            hop_offsets=np.asarray(self._offsets, dtype=np.int64),
            hop_idx=np.asarray(self._hop_idx, dtype=np.int32),
            addr_id=np.asarray(self._addr, dtype=np.int32),
            rdns_id=np.asarray(self._rdns, dtype=np.int32),
            rtt=np.asarray(self._rtt, dtype=np.float64),
            reply_ttl=np.asarray(self._reply_ttl, dtype=np.int32),
            attempts=np.asarray(self._attempts, dtype=np.int32),
        )


# ----------------------------------------------------------------------
# Vectorized primitives
# ----------------------------------------------------------------------
def _pair_sort(corpus: TraceCorpus) -> "tuple[np.ndarray, np.ndarray]":
    """Adjacent responding pairs of *corpus*, sorted by composed key.

    Returns ``(rows, keys)`` sorted by ``key`` with rows ascending
    within each key group: ``rows[i]`` indexes the pair's *first* hop
    row, ``keys[i] = first_id * len(addresses) + second_id``.  Computed
    once per corpus — both ``exclude_final_echo`` variants of
    :func:`adjacent_pair_counts` derive from this single sort, since
    the echo exclusion only filters rows and filtering preserves both
    the grouping and the in-group row order.
    """
    cached = corpus._derived.get("pair_sort")
    if cached is not None:
        return cached
    empty = np.empty(0, dtype=np.int64)
    if corpus.hop_count < 2:
        cached = (empty, empty)
    else:
        addr = corpus.addr_id
        trace_ids = corpus.hop_trace_ids()
        first = addr[:-1]
        second = addr[1:]
        mask = (
            (trace_ids[:-1] == trace_ids[1:]) & (first >= 0) & (second >= 0)
        )
        rows = np.flatnonzero(mask).astype(np.int64)
        if rows.shape[0] == 0:
            cached = (empty, empty)
        else:
            table_size = np.int64(len(corpus.addresses))
            keys = first[rows].astype(np.int64) * table_size + second[rows]
            order = np.argsort(keys, kind="stable")
            cached = (rows[order], keys[order])
    corpus._derived["pair_sort"] = cached
    return cached


def adjacent_pair_counts(
    corpus: TraceCorpus, exclude_final_echo: bool = False
) -> "list[tuple[int, int, int]]":
    """Unique adjacent responding address-id pairs with occurrence counts.

    Vectorized equivalent of summing
    :meth:`TraceResult.adjacent_pairs` over the whole corpus: a pair is
    two *immediately consecutive* hop rows of the same trace where both
    hops responded (a silent ``*`` row between two addresses breaks
    adjacency, exactly as the object path excludes it).

    ``exclude_final_echo`` drops pairs ending at the final hop of a
    completed trace — the echo-reply exclusion the B.1 point-to-point
    vote requires.

    Returns ``(first_id, second_id, count)`` tuples **in first-
    occurrence order** over the corpus, which is exactly the insertion
    order of the object path's ``Counter`` — so every downstream dict
    and graph built from these pairs is ordered identically to the
    oracle's, not merely equal as a multiset.
    """
    rows, keys = _pair_sort(corpus)
    if rows.shape[0] == 0:
        return []
    if exclude_final_echo:
        # The second hop sits on the trace's last row and the trace
        # completed: that reply carries the probed address, not an
        # inbound interface.
        is_last = np.zeros(corpus.hop_count, dtype=np.bool_)
        last_rows = corpus.last_hop_rows()
        # Restrict to non-empty traces: an empty trace's "last row"
        # (offset - 1) aliases the previous trace's final hop, and the
        # duplicate fancy-index assignment would clobber its flag.
        nonempty = np.diff(corpus.hop_offsets) > 0
        is_last[last_rows[nonempty]] = corpus.completed[nonempty]
        keep = ~is_last[rows + 1]
        rows = rows[keep]
        keys = keys[keep]
        if rows.shape[0] == 0:
            return []
    starts = np.flatnonzero(
        np.concatenate(([True], keys[1:] != keys[:-1]))
    )
    counts = np.diff(np.append(starts, keys.shape[0]))
    # Stable key sort kept rows ascending within each group, so the
    # group's first element is its earliest corpus occurrence.
    order = np.argsort(rows[starts], kind="stable")
    unique = keys[starts]
    table_size = np.int64(len(corpus.addresses))
    firsts = unique // table_size
    seconds = unique % table_size
    return [
        (int(firsts[k]), int(seconds[k]), int(counts[k]))
        for k in order
    ]


def responding_address_ids(corpus: TraceCorpus) -> np.ndarray:
    """Sorted unique address ids that responded at some hop.

    Sort-free: a bincount over the (dense, bounded) intern-id space
    replaces ``np.unique``'s full sort of the hop column.
    """
    addr = corpus.addr_id
    responding = addr[addr >= 0]
    if responding.shape[0] == 0:
        return np.empty(0, dtype=addr.dtype)
    counts = np.bincount(responding, minlength=len(corpus.addresses))
    return np.flatnonzero(counts).astype(addr.dtype)


def hop_span_groups(
    corpus: TraceCorpus,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Per (address, trace) hop-index spans over responding hops.

    Returns ``(addr_ids, trace_ids, earliest_idx, latest_idx)`` — one
    entry per distinct (responding address, trace) combination, the
    grouped min/max of :attr:`TraceCorpus.hop_idx`.  This is the
    vectorized construction of the DPR follow-up index: spacing is
    measured in hop-index (TTL) space, so silent interior hops count
    toward separation.
    """
    empty = np.empty(0, dtype=np.int64)
    if corpus.hop_count == 0:
        return empty, empty, empty, empty
    responding = corpus.addr_id >= 0
    if not responding.any():
        return empty, empty, empty, empty
    addr = corpus.addr_id[responding].astype(np.int64)
    trace = corpus.hop_trace_ids()[responding]
    idx = corpus.hop_idx[responding].astype(np.int64)
    keys = addr * np.int64(max(1, len(corpus))) + trace
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    sorted_idx = idx[order]
    starts = np.flatnonzero(
        np.concatenate(([True], sorted_keys[1:] != sorted_keys[:-1]))
    )
    earliest = np.minimum.reduceat(sorted_idx, starts)
    latest = np.maximum.reduceat(sorted_idx, starts)
    group_addr = addr[order][starts]
    group_trace = trace[order][starts]
    return group_addr, group_trace, earliest, latest
