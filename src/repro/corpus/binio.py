"""On-disk corpus formats: validated binary (``.npz``) and JSON.

JSON remains the interchange format every external tool can read — a
``trace-corpus`` artifact whose ``traces`` array reuses the checkpoint
trace schema, validated by :mod:`repro.validate.schema` like every
other artifact.  The binary format exists for the corpus scale JSON
cannot carry: the :class:`~repro.corpus.columnar.TraceCorpus` columns
written verbatim into an ``.npz`` container (no pickling), with the
string tables as UTF-8 JSON payloads and a small JSON header carrying
the schema version and expected cardinalities.

Both loaders obey the PR-2 contract: any structural defect — missing
array, wrong dtype, inconsistent lengths, non-monotonic offsets, ids
out of table range, bad header — raises
:class:`~repro.errors.SchemaError` naming the offending path, never a
bare ``KeyError``.  Writes are atomic (write-temp-rename), matching
every other artifact exporter.
"""

from __future__ import annotations

import io
import json
import os
import pathlib
import tempfile

import numpy as np

from repro.corpus.columnar import _ARRAY_FIELDS, StringTable, TraceCorpus
from repro.errors import SchemaError
from repro.io.checkpoint import trace_from_dict, trace_to_dict
from repro.validate.schema import parse_artifact

CORPUS_KIND = "trace-corpus"
CORPUS_SCHEMA_VERSION = 1

#: String tables stored in the container, in header order.
_TABLE_FIELDS = ("addresses", "hostnames", "vps")


# ----------------------------------------------------------------------
# JSON interchange
# ----------------------------------------------------------------------
def corpus_to_json(corpus: TraceCorpus) -> str:
    """Serialize as the validated ``trace-corpus`` JSON artifact."""
    payload = {
        "schema": CORPUS_SCHEMA_VERSION,
        "kind": CORPUS_KIND,
        "traces": [trace_to_dict(trace) for trace in corpus.to_traces()],
    }
    return json.dumps(payload, sort_keys=True)


def corpus_from_json(text: str) -> TraceCorpus:
    """Parse and schema-validate a ``trace-corpus`` JSON artifact."""
    payload = parse_artifact(text, kind=CORPUS_KIND)
    return TraceCorpus.from_traces(
        [trace_from_dict(item) for item in payload["traces"]]
    )


# ----------------------------------------------------------------------
# Binary container
# ----------------------------------------------------------------------
def _encode_strings(strings: "list[str]") -> np.ndarray:
    """A string table as a UTF-8 JSON byte column (pickle-free)."""
    return np.frombuffer(
        json.dumps(strings).encode("utf-8"), dtype=np.uint8
    )


def _decode_strings(array: np.ndarray, path: str) -> "list[str]":
    try:
        decoded = json.loads(bytes(array.tobytes()).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SchemaError(f"{path}: undecodable string table: {exc}") from None
    if not isinstance(decoded, list) or any(
        not isinstance(item, str) for item in decoded
    ):
        raise SchemaError(f"{path}: expected a JSON array of strings")
    return decoded


def save_corpus(path: "str | pathlib.Path", corpus: TraceCorpus) -> pathlib.Path:
    """Write the binary corpus container atomically; returns the path."""
    path = pathlib.Path(path)
    header = {
        "schema": CORPUS_SCHEMA_VERSION,
        "kind": CORPUS_KIND,
        "traces": len(corpus),
        "hops": corpus.hop_count,
        "tables": {
            name: len(getattr(corpus, name)) for name in _TABLE_FIELDS
        },
    }
    arrays = {
        "header": np.frombuffer(
            json.dumps(header, sort_keys=True).encode("utf-8"), dtype=np.uint8
        ),
    }
    for name in _TABLE_FIELDS:
        arrays[name] = _encode_strings(getattr(corpus, name).strings)
    for name, dtype in _ARRAY_FIELDS.items():
        arrays[name] = np.ascontiguousarray(
            getattr(corpus, name), dtype=dtype
        )
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, temp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(buffer.getvalue())
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, path)
    except BaseException:
        with pathlib.Path(temp_name) as leftover:
            if leftover.exists():
                leftover.unlink()
        raise
    return path


def _require(archive, name: str) -> np.ndarray:
    if name not in archive.files:
        raise SchemaError(f"$.{name}: missing required array")
    return archive[name]


def load_corpus(path: "str | pathlib.Path") -> TraceCorpus:
    """Load and structurally validate a binary corpus container.

    Every check failure is a :class:`SchemaError` naming the array (and
    never a ``KeyError``): the binary loader sits behind the same
    validation contract as the JSON loaders.
    """
    path = pathlib.Path(path)
    try:
        archive = np.load(path, allow_pickle=False)
    except FileNotFoundError:
        raise SchemaError(f"$: no corpus file at {path}") from None
    except (OSError, ValueError) as exc:
        raise SchemaError(f"$: unreadable corpus container: {exc}") from None
    with archive:
        header_raw = _require(archive, "header")
        if header_raw.dtype != np.uint8:
            raise SchemaError("$.header: expected a uint8 byte column")
        try:
            header = json.loads(bytes(header_raw.tobytes()).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SchemaError(f"$.header: undecodable header: {exc}") from None
        if not isinstance(header, dict):
            raise SchemaError("$.header: expected a JSON object")
        if header.get("kind") != CORPUS_KIND:
            raise SchemaError(
                f"$.header.kind: expected {CORPUS_KIND!r}, "
                f"got {header.get('kind')!r}"
            )
        if header.get("schema") != CORPUS_SCHEMA_VERSION:
            raise SchemaError(
                "$.header.schema: unsupported trace-corpus schema "
                f"version {header.get('schema')!r}"
            )
        tables = {
            name: StringTable(_decode_strings(
                _require(archive, name), f"$.{name}"
            ))
            for name in _TABLE_FIELDS
        }
        arrays: "dict[str, np.ndarray]" = {}
        for name, dtype in _ARRAY_FIELDS.items():
            array = _require(archive, name)
            if array.dtype != dtype:
                raise SchemaError(
                    f"$.{name}: expected dtype {dtype}, got {array.dtype}"
                )
            if array.ndim != 1:
                raise SchemaError(
                    f"$.{name}: expected 1-d array, got {array.ndim}-d"
                )
            arrays[name] = array
    corpus = TraceCorpus(
        addresses=tables["addresses"],
        hostnames=tables["hostnames"],
        vps=tables["vps"],
        **arrays,
    )
    _validate_structure(corpus, header)
    return corpus


def _validate_structure(corpus: TraceCorpus, header: dict) -> None:
    """Cross-array invariants the dtype checks cannot express."""
    trace_count = len(corpus)
    hop_count = corpus.hop_count
    if header.get("traces") != trace_count:
        raise SchemaError(
            f"$.header.traces: header says {header.get('traces')!r}, "
            f"arrays carry {trace_count}"
        )
    if header.get("hops") != hop_count:
        raise SchemaError(
            f"$.header.hops: header says {header.get('hops')!r}, "
            f"arrays carry {hop_count}"
        )
    for name in ("dst_id", "completed", "flow_id", "vp_id"):
        if getattr(corpus, name).shape[0] != trace_count:
            raise SchemaError(
                f"$.{name}: length {getattr(corpus, name).shape[0]} != "
                f"trace count {trace_count}"
            )
    for name in ("addr_id", "rdns_id", "rtt", "reply_ttl", "attempts"):
        if getattr(corpus, name).shape[0] != hop_count:
            raise SchemaError(
                f"$.{name}: length {getattr(corpus, name).shape[0]} != "
                f"hop count {hop_count}"
            )
    offsets = corpus.hop_offsets
    if offsets.shape[0] != trace_count + 1:
        raise SchemaError(
            f"$.hop_offsets: expected {trace_count + 1} offsets, "
            f"got {offsets.shape[0]}"
        )
    if offsets[0] != 0 or offsets[-1] != hop_count:
        raise SchemaError(
            "$.hop_offsets: offsets must start at 0 and end at the "
            f"hop count ({hop_count})"
        )
    if trace_count and bool(np.any(np.diff(offsets) < 0)):
        raise SchemaError("$.hop_offsets: offsets must be non-decreasing")
    checks = (
        ("src_id", corpus.src_id, len(corpus.addresses), False),
        ("dst_id", corpus.dst_id, len(corpus.addresses), False),
        ("vp_id", corpus.vp_id, len(corpus.vps), False),
        ("addr_id", corpus.addr_id, len(corpus.addresses), True),
        ("rdns_id", corpus.rdns_id, len(corpus.hostnames), True),
    )
    for name, column, table_size, optional in checks:
        if column.shape[0] == 0:
            continue
        floor = -1 if optional else 0
        if int(column.min()) < floor or int(column.max()) >= table_size:
            raise SchemaError(
                f"$.{name}: id out of table range [{floor}, {table_size})"
            )
