"""Router and interface models.

A :class:`Router` owns a set of :class:`Interface` objects (its alias
set, in measurement terms) and an ICMP :class:`ReplyPolicy` describing
how it answers probes.  The reply policy is where the paper's
measurement obstacles live: routers replying from the inbound interface
(which makes point-to-point subnet inference possible, Appendix B.1),
routers that ignore probes from outside their region (AT&T, §6.1), and
shared IP-ID counters (which make MIDAR-style alias resolution work).
"""

from __future__ import annotations

import hashlib
import ipaddress
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.errors import TopologyError
from repro.net.addresses import IPAddress, parse_ip

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.link import Link


def _stable_hash(*parts: object) -> int:
    """Deterministic 64-bit hash of the string forms of *parts*."""
    text = "|".join(str(p) for p in parts)
    return int.from_bytes(hashlib.blake2b(text.encode(), digest_size=8).digest(), "big")


@dataclass
class Interface:
    """One router interface: an address on a subnet, optionally linked."""

    address: IPAddress
    prefixlen: int
    router: "Router" = field(repr=False, default=None)  # type: ignore[assignment]
    link: "Optional[Link]" = field(repr=False, default=None)
    name: str = ""

    def __post_init__(self) -> None:
        self.address = parse_ip(self.address)

    @property
    def subnet(self):
        """The interface's subnet as an ip_network object."""
        return ipaddress.ip_network(
            f"{self.address}/{self.prefixlen}", strict=False
        )

    def neighbor(self) -> "Optional[Interface]":
        """The interface at the other end of this interface's link."""
        if self.link is None:
            return None
        return self.link.other(self)


@dataclass
class ReplyPolicy:
    """How a router answers ICMP probes.

    ``reply_from``
        ``"inbound"`` — reply sourced from the interface the probe
        arrived on (the common case, and what makes the /30-peer
        heuristic of Appendix B.1 work); ``"probed"`` — reply sourced
        from the probed address; ``"loopback"`` — always the loopback.
    ``respond_prob``
        Probability (evaluated deterministically per probe) that the
        router answers at all.  Models silent hops ("*" lines).
    ``internal_only``
        When set, the router only answers probes whose source lies
        inside one of the listed prefixes.  Models AT&T's filtering of
        traceroute from the public internet / its own backbone (§6.1).
    ``initial_ttl``
        TTL the router puts on its ICMP replies (64 or 255 in the
        wild); reply-TTL fingerprinting appears in App. C's traces.
    """

    reply_from: str = "inbound"
    respond_prob: float = 1.0
    internal_only: "tuple[ipaddress.IPv4Network | ipaddress.IPv6Network, ...]" = ()
    #: Like ``internal_only`` but restricting only direct echo (ping)
    #: replies; TTL-expiry replies are unaffected.  Models AT&T last-mile
    #: devices that cannot be pinged externally yet reveal themselves to
    #: the TTL-limited echo trick of §6.3.
    echo_internal_only: "tuple[ipaddress.IPv4Network | ipaddress.IPv6Network, ...]" = ()
    initial_ttl: int = 64

    @staticmethod
    def _inside(source: IPAddress, prefixes) -> bool:
        src = parse_ip(source)
        return any(src.version == net.version and src in net for net in prefixes)

    def responds_to(self, probe_source: IPAddress, probe_id: object) -> bool:
        """Deterministically decide whether this probe gets a reply."""
        if self.internal_only and not self._inside(probe_source, self.internal_only):
            return False
        if self.respond_prob >= 1.0:
            return True
        if self.respond_prob <= 0.0:
            return False
        draw = _stable_hash("respond", probe_id) % 10_000
        return draw < self.respond_prob * 10_000

    def answers_echo(self, probe_source: IPAddress, probe_id: object) -> bool:
        """Whether a direct echo (ping) to this router gets a reply."""
        if not self.responds_to(probe_source, probe_id):
            return False
        if self.echo_internal_only and not self._inside(
            probe_source, self.echo_internal_only
        ):
            return False
        return True


class Router:
    """A router in the simulated internet.

    Ground-truth annotations (``co``, ``region``, ``role``) are attached
    by the topology generators; the measurement and inference layers
    never read them — only the scoring code in ``repro.infer.metrics``
    does.
    """

    __slots__ = (
        "uid",
        "name",
        "interfaces",
        "loopback",
        "policy",
        "co",
        "region",
        "role",
        "asn",
        "_ipid",
        "_ipid_step",
    )

    def __init__(
        self,
        uid: str,
        name: str = "",
        policy: "ReplyPolicy | None" = None,
        asn: int = 0,
        ipid_seed: "int | None" = None,
        ipid_step: int = 1,
    ) -> None:
        self.uid = uid
        self.name = name or uid
        self.interfaces: list[Interface] = []
        self.loopback: Optional[IPAddress] = None
        self.policy = policy or ReplyPolicy()
        self.co: Optional[object] = None
        self.region: Optional[object] = None
        self.role: str = ""
        self.asn = asn
        # Shared, monotonically increasing IP-ID counter across all
        # interfaces; this is the signal MIDAR's monotonic bounds test
        # detects.  Seeded per-router so distinct routers interleave.
        self._ipid = (
            ipid_seed if ipid_seed is not None else _stable_hash("ipid", uid) % 65536
        )
        self._ipid_step = max(1, ipid_step)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Router({self.uid!r}, ifaces={len(self.interfaces)})"

    def add_interface(self, address: "str | IPAddress", prefixlen: int, name: str = "") -> Interface:
        """Attach a new interface with the given address to this router."""
        iface = Interface(parse_ip(address), prefixlen, router=self, name=name)
        self.interfaces.append(iface)
        return iface

    def addresses(self) -> "list[IPAddress]":
        """All interface addresses (the router's true alias set)."""
        addrs = [iface.address for iface in self.interfaces]
        if self.loopback is not None:
            addrs.append(self.loopback)
        return addrs

    def owns(self, address: "str | IPAddress") -> bool:
        """True when *address* belongs to any interface (or loopback)."""
        addr = parse_ip(address)
        return any(addr == a for a in self.addresses())

    def interface_for(self, address: "str | IPAddress") -> Interface:
        """Return the interface bearing *address*."""
        addr = parse_ip(address)
        for iface in self.interfaces:
            if iface.address == addr:
                return iface
        raise TopologyError(f"{self.uid} has no interface {addr}")

    def probe_response(
        self,
        probe_source: "str | IPAddress",
        probe_id: object,
        echo: bool = False,
        faults=None,
    ) -> bool:
        """Whether this router answers a probe, with faults applied.

        The reply policy decides *refusal* (filtering, habitual
        silence); an attached fault injector additionally models ICMP
        rate-limiting windows, which look identical on the wire but are
        transient — a retry with a fresh probe id may land in an open
        window.
        """
        if faults is not None and faults.rate_limited(self.uid, probe_id):
            return False
        decide = self.policy.answers_echo if echo else self.policy.responds_to
        return decide(parse_ip(probe_source), probe_id)

    def next_ipid(self) -> int:
        """Advance and return the router-wide IP-ID counter (16-bit)."""
        self._ipid = (self._ipid + self._ipid_step) % 65536
        return self._ipid

    def reply_address(self, inbound: "Interface | None", probed: "str | IPAddress") -> IPAddress:
        """Pick the source address for an ICMP reply, per policy."""
        mode = self.policy.reply_from
        if mode == "inbound" and inbound is not None:
            return inbound.address
        if mode == "loopback" and self.loopback is not None:
            return self.loopback
        probed_addr = parse_ip(probed)
        if self.owns(probed_addr):
            return probed_addr
        if inbound is not None:
            return inbound.address
        if self.interfaces:
            return self.interfaces[0].address
        raise TopologyError(f"router {self.uid} has no interfaces to reply from")
