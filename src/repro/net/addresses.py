"""Address and prefix utilities.

The simulated networks use real IPv4/IPv6 semantics via the standard
library :mod:`ipaddress` module.  This module adds the pieces the paper's
methodology depends on:

* sequential allocators that carve prefixes out of an ISP's address
  space (per-region /16s, per-CO /24s, /30 and /31 point-to-point
  subnets — Appendix B.1);
* point-to-point "other end" computation (``p2p_peer``), used to refine
  IP→CO mappings (Fig 19 of the paper);
* an IPv6 bit-field codec, because mobile carriers encode region /
  EdgeCO / packet-gateway identifiers into address bits (§7.2, Fig 16).
"""

from __future__ import annotations

import ipaddress
from typing import Iterator, Union

from repro.errors import AddressError

IPAddress = Union[ipaddress.IPv4Address, ipaddress.IPv6Address]
IPNetwork = Union[ipaddress.IPv4Network, ipaddress.IPv6Network]


def parse_ip(value: "str | int | IPAddress") -> IPAddress:
    """Parse a string, int, or address object into an address object."""
    if isinstance(value, (ipaddress.IPv4Address, ipaddress.IPv6Address)):
        return value
    try:
        return ipaddress.ip_address(value)
    except ValueError as exc:
        raise AddressError(f"not an IP address: {value!r}") from exc


def same_subnet(a: "str | IPAddress", b: "str | IPAddress", prefixlen: int) -> bool:
    """Return True when two addresses fall in the same /prefixlen subnet."""
    addr_a, addr_b = parse_ip(a), parse_ip(b)
    if addr_a.version != addr_b.version:
        return False
    shift = addr_a.max_prefixlen - prefixlen
    return int(addr_a) >> shift == int(addr_b) >> shift


def p2p_peer(addr: "str | IPAddress", prefixlen: int = 30) -> IPAddress:
    """Return the other usable address of a point-to-point subnet.

    For a /31 the two addresses are the two host addresses; for a /30
    the usable addresses are the two between the network and broadcast
    addresses.  Appendix B.1 uses this to find the interface address on
    the far side of an inter-CO link.
    """
    address = parse_ip(addr)
    if address.version != 4:
        raise AddressError("p2p_peer is defined for IPv4 point-to-point subnets")
    value = int(address)
    if prefixlen == 31:
        return ipaddress.IPv4Address(value ^ 1)
    if prefixlen == 30:
        low2 = value & 0b11
        if low2 == 0b01:
            return ipaddress.IPv4Address(value + 1)
        if low2 == 0b10:
            return ipaddress.IPv4Address(value - 1)
        raise AddressError(
            f"{address} is the network or broadcast address of its /30"
        )
    raise AddressError(f"not a point-to-point prefix length: /{prefixlen}")


def usable_p2p_addresses(network: "str | IPNetwork") -> "tuple[IPAddress, IPAddress]":
    """Return the two usable addresses of a /30 or /31 subnet."""
    net = ipaddress.ip_network(network) if isinstance(network, str) else network
    if net.prefixlen == 31:
        base = int(net.network_address)
        return (ipaddress.IPv4Address(base), ipaddress.IPv4Address(base + 1))
    if net.prefixlen == 30:
        base = int(net.network_address)
        return (ipaddress.IPv4Address(base + 1), ipaddress.IPv4Address(base + 2))
    raise AddressError(f"not a point-to-point subnet: {net}")


class Ipv4Allocator:
    """Sequential carver of sub-prefixes and host addresses from a pool.

    The allocator mimics how an ISP numbers its plant: contiguous /24s
    per CO, and /30 or /31 point-to-point subnets for inter-CO links,
    all drawn from the ISP's aggregate announcement.
    """

    def __init__(self, pool: "str | ipaddress.IPv4Network") -> None:
        self.pool = (
            ipaddress.ip_network(pool) if isinstance(pool, str) else pool
        )
        if self.pool.version != 4:
            raise AddressError("Ipv4Allocator requires an IPv4 pool")
        self._cursor = int(self.pool.network_address)
        self._end = int(self.pool.broadcast_address) + 1

    @property
    def remaining(self) -> int:
        """Number of unallocated addresses left in the pool."""
        return self._end - self._cursor

    def allocate_subnet(self, prefixlen: int) -> ipaddress.IPv4Network:
        """Allocate the next aligned subnet of the given prefix length."""
        if prefixlen < self.pool.prefixlen or prefixlen > 32:
            raise AddressError(
                f"cannot allocate /{prefixlen} from {self.pool}"
            )
        size = 1 << (32 - prefixlen)
        start = (self._cursor + size - 1) & ~(size - 1)  # align up
        if start + size > self._end:
            raise AddressError(f"pool {self.pool} exhausted")
        self._cursor = start + size
        return ipaddress.IPv4Network((start, prefixlen))

    def allocate_host(self) -> ipaddress.IPv4Address:
        """Allocate the next single host address."""
        if self._cursor >= self._end:
            raise AddressError(f"pool {self.pool} exhausted")
        addr = ipaddress.IPv4Address(self._cursor)
        self._cursor += 1
        return addr

    def allocate_p2p(self, prefixlen: int = 30) -> "tuple[ipaddress.IPv4Address, ipaddress.IPv4Address, ipaddress.IPv4Network]":
        """Allocate a point-to-point subnet; return (side_a, side_b, subnet)."""
        if prefixlen not in (30, 31):
            raise AddressError(f"point-to-point prefixes are /30 or /31, not /{prefixlen}")
        subnet = self.allocate_subnet(prefixlen)
        side_a, side_b = usable_p2p_addresses(subnet)
        return side_a, side_b, subnet


class Ipv6FieldCodec:
    """Pack and unpack named bit fields of an IPv6 address.

    Mobile carriers encode topological meaning into address bits
    (§7.2): e.g. AT&T user addresses carry the region in bits 32–39 and
    router addresses carry the packet gateway in bits 48–51.  Fields are
    specified as ``{"name": (start_bit, end_bit_exclusive)}`` counting
    from the most significant bit (bit 0), matching the paper's
    "Addr. Bit Fields" notation in Fig 16.
    """

    def __init__(self, fields: "dict[str, tuple[int, int]]") -> None:
        for name, (start, end) in fields.items():
            if not 0 <= start < end <= 128:
                raise AddressError(f"field {name!r} has invalid range ({start}, {end})")
        self.fields = dict(fields)

    def width(self, name: str) -> int:
        """Bit width of a field."""
        start, end = self.fields[name]
        return end - start

    def encode(self, base: "str | ipaddress.IPv6Address", **values: int) -> ipaddress.IPv6Address:
        """Return *base* with each named field overwritten by its value."""
        addr = int(parse_ip(str(base)) if isinstance(base, str) else base)
        for name, value in values.items():
            if name not in self.fields:
                raise AddressError(f"unknown IPv6 field {name!r}")
            start, end = self.fields[name]
            nbits = end - start
            if value < 0 or value >= (1 << nbits):
                raise AddressError(
                    f"value {value} does not fit in {nbits}-bit field {name!r}"
                )
            shift = 128 - end
            mask = ((1 << nbits) - 1) << shift
            addr = (addr & ~mask) | (value << shift)
        return ipaddress.IPv6Address(addr)

    def decode(self, address: "str | ipaddress.IPv6Address") -> "dict[str, int]":
        """Extract every named field's value from an address."""
        addr = int(parse_ip(address))
        out = {}
        for name, (start, end) in self.fields.items():
            shift = 128 - end
            nbits = end - start
            out[name] = (addr >> shift) & ((1 << nbits) - 1)
        return out

    @staticmethod
    def extract_bits(address: "str | ipaddress.IPv6Address", start: int, end: int) -> int:
        """Extract bits [start, end) of any IPv6 address (MSB = bit 0)."""
        if not 0 <= start < end <= 128:
            raise AddressError(f"invalid bit range ({start}, {end})")
        addr = int(parse_ip(address))
        return (addr >> (128 - end)) & ((1 << (end - start)) - 1)


def hosts_in(network: "str | IPNetwork", limit: "int | None" = None) -> Iterator[IPAddress]:
    """Yield host addresses of a network, optionally capped at *limit*."""
    net = ipaddress.ip_network(network) if isinstance(network, str) else network
    count = 0
    for host in net.hosts():
        if limit is not None and count >= limit:
            return
        yield host
        count += 1
