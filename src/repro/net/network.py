"""The simulated internet: routers, links, and packet forwarding.

:class:`Network` is the substrate every measurement tool probes.  It
computes forwarding paths with a delay-weighted shortest-path search
(cached single-source runs, so campaigns from a few vantage points to
many thousands of targets stay fast), supports equal-cost multipath
with per-flow deterministic tie-breaking (paris-traceroute keeps the
flow fixed, so a flow sees a stable path), applies MPLS visibility
rules, and answers probes according to each router's reply policy.

Ground truth lives in router/CO annotations; the measurement API
deliberately exposes only what a real prober could see: reply
addresses, reply TTLs, RTTs, and rDNS.
"""

from __future__ import annotations

import heapq
import ipaddress
from typing import Iterable, Optional

from repro.errors import RoutingError, TopologyError
from repro.net.addresses import IPAddress, parse_ip
from repro.net.dns import RdnsStore
from repro.net.link import PER_HOP_PROCESSING_MS, Link
from repro.net.mpls import MplsDomain
from repro.net.router import Interface, Router, _stable_hash


class Network:
    """A collection of routers and links that forwards probe packets."""

    def __init__(self) -> None:
        self.routers: dict[str, Router] = {}
        self.links: list[Link] = []
        self.rdns = RdnsStore()
        self.mpls = MplsDomain()
        #: Active fault injector (None ⇒ the fault-free substrate).
        self.faults = None
        #: Pluggable routing policy (None ⇒ delay-weighted SPF).  A
        #: route model exposes ``forwarding_path(network, src, dst,
        #: flow_id)`` and may return None for flows it declines to
        #: route, which fall back to the default SPF.  Models are
        #: attached *after* the topology is built (they may keep their
        #: own per-source caches keyed on the link count).
        self.route_model = None
        self._addr_owner: dict[str, Interface] = {}
        # Longest-prefix "attraction" routes: traffic to any address in
        # the prefix is delivered to the given router even when no
        # interface owns the address (e.g. unused addresses of an
        # EdgeCO's customer /24).
        self._prefix_routes: dict[str, Router] = {}
        self._prefix_lens: set[tuple[int, int]] = set()  # (version, prefixlen)
        self._adj: dict[str, list[tuple[str, float, Link]]] = {}
        self._sssp_cache: dict[str, tuple[dict[str, float], dict[str, list[str]]]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_router(self, router: Router) -> Router:
        """Register a router (uids must be unique)."""
        if router.uid in self.routers:
            raise TopologyError(f"duplicate router uid {router.uid!r}")
        self.routers[router.uid] = router
        self._adj.setdefault(router.uid, [])
        for iface in router.interfaces:
            self._register_interface(iface)
        return router

    def _register_interface(self, iface: Interface) -> None:
        key = str(iface.address)
        if key in self._addr_owner:
            raise TopologyError(f"address {key} assigned twice")
        self._addr_owner[key] = iface

    def add_interface(self, router: Router, address: "str | IPAddress", prefixlen: int, name: str = "") -> Interface:
        """Add an interface to an already-registered router."""
        iface = router.add_interface(address, prefixlen, name=name)
        self._register_interface(iface)
        return iface

    def connect(
        self,
        router_a: Router,
        router_b: Router,
        addr_a: "str | IPAddress",
        addr_b: "str | IPAddress",
        prefixlen: int = 30,
        length_km: float = 1.0,
        extra_delay_ms: float = 0.0,
        metric: "float | None" = None,
        ring: object = None,
    ) -> Link:
        """Create a point-to-point link with the given interface addresses."""
        iface_a = self.add_interface(router_a, addr_a, prefixlen)
        iface_b = self.add_interface(router_b, addr_b, prefixlen)
        link = Link(iface_a, iface_b, length_km=length_km,
                    extra_delay_ms=extra_delay_ms, metric=metric, ring=ring)
        self.links.append(link)
        weight = link.routing_weight
        self._adj[router_a.uid].append((router_b.uid, weight, link))
        self._adj[router_b.uid].append((router_a.uid, weight, link))
        self._sssp_cache.clear()
        return link

    def add_prefix_route(self, prefix: "str | ipaddress.IPv4Network | ipaddress.IPv6Network", router: Router) -> None:
        """Route all traffic for *prefix* to *router* (longest match wins)."""
        net = ipaddress.ip_network(prefix) if isinstance(prefix, str) else prefix
        self._prefix_routes[str(net)] = router
        self._prefix_lens.add((net.version, net.prefixlen))

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def attach_faults(self, injector) -> None:
        """Activate a :class:`~repro.faults.injector.FaultInjector`.

        The injector is consulted by the probing engines and the rDNS
        store; detach (pass ``None``) to restore the fault-free
        substrate.  Attachment changes no topology state, so it is safe
        to attach around a campaign and detach afterwards.
        """
        self.faults = injector
        self.rdns.faults = injector

    def detach_faults(self) -> None:
        """Remove any active fault injector."""
        self.attach_faults(None)

    # ------------------------------------------------------------------
    # Address resolution
    # ------------------------------------------------------------------
    def owner_interface(self, address: "str | IPAddress") -> Optional[Interface]:
        """The interface that owns *address*, if any."""
        return self._addr_owner.get(str(parse_ip(address)))

    def owner_router(self, address: "str | IPAddress") -> Optional[Router]:
        """The router that owns *address* as an interface or loopback."""
        iface = self.owner_interface(address)
        if iface is not None:
            return iface.router
        key = str(parse_ip(address))
        for router in self.routers.values():
            if router.loopback is not None and str(router.loopback) == key:
                return router
        return None

    def route_target(self, address: "str | IPAddress") -> "tuple[Optional[Router], bool]":
        """Resolve a probe destination to (delivering router, address exists).

        A non-existent address inside a routed prefix is delivered to
        the prefix's router (which will not answer an echo for it); an
        address outside all prefixes is unroutable.
        """
        addr = parse_ip(address)
        iface = self.owner_interface(addr)
        if iface is not None:
            return iface.router, True
        best: Optional[Router] = None
        best_len = -1
        for version, plen in self._prefix_lens:
            if version != addr.version or plen <= best_len:
                continue
            candidate = str(
                ipaddress.ip_network(f"{addr}/{plen}", strict=False)
            )
            router = self._prefix_routes.get(candidate)
            if router is not None:
                best, best_len = router, plen
        return best, False

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    def _sssp(self, src_uid: str) -> "tuple[dict[str, float], dict[str, list[str]]]":
        """Single-source shortest paths keeping *all* equal-cost predecessors."""
        cached = self._sssp_cache.get(src_uid)
        if cached is not None:
            return cached
        dist: dict[str, float] = {src_uid: 0.0}
        preds: dict[str, list[str]] = {src_uid: []}
        heap = [(0.0, src_uid)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist.get(u, float("inf")):
                continue
            for v, w, _link in self._adj[u]:
                nd = d + w
                old = dist.get(v, float("inf"))
                if nd < old - 1e-12:
                    dist[v] = nd
                    preds[v] = [u]
                    heapq.heappush(heap, (nd, v))
                elif abs(nd - old) <= 1e-12 and u not in preds[v] and w > 0:
                    # Zero-weight ties would make u and v each other's
                    # predecessors and trap the path walk in a cycle.
                    preds[v].append(u)
        self._sssp_cache[src_uid] = (dist, preds)
        return dist, preds

    def forwarding_path(
        self, src: Router, dst: Router, flow_id: object = 0
    ) -> "list[Router]":
        """The router-level path a flow takes from *src* to *dst*.

        Equal-cost choices are broken deterministically by a hash of the
        flow id and the node, so a fixed flow (paris-traceroute) always
        sees one stable path while different flows may diverge.

        When a :attr:`route_model` is attached it is consulted first;
        a model that returns None for this flow falls through to the
        default delay-weighted SPF below.
        """
        if self.route_model is not None:
            modeled = self.route_model.forwarding_path(
                self, src, dst, flow_id
            )
            if modeled is not None:
                return modeled
        dist, preds = self._sssp(src.uid)
        if dst.uid not in dist:
            raise RoutingError(f"no route from {src.uid} to {dst.uid}")
        path_uids = [dst.uid]
        node = dst.uid
        while node != src.uid:
            options = preds[node]
            if len(options) == 1:
                node = options[0]
            else:
                choice = _stable_hash("ecmp", flow_id, node) % len(options)
                node = sorted(options)[choice]
            path_uids.append(node)
        path_uids.reverse()
        return [self.routers[uid] for uid in path_uids]

    def _link_between(self, a: Router, b: Router) -> Link:
        for neighbor_uid, _w, link in self._adj[a.uid]:
            if neighbor_uid == b.uid:
                return link
        raise RoutingError(f"no link between {a.uid} and {b.uid}")

    def path_delays_ms(self, path: "list[Router]") -> "list[float]":
        """Cumulative one-way *physical* delay at each router of *path*.

        Routing may follow configured metrics, but latency always
        follows the fiber: this walks the actual links taken.
        """
        delays = [0.0]
        total = 0.0
        for prev, cur in zip(path, path[1:]):
            link = self._link_between(prev, cur)
            total += link.delay_ms + PER_HOP_PROCESSING_MS
            delays.append(total)
        return delays

    def path_delay_ms(self, src: Router, dst: Router, flow_id: object = 0) -> float:
        """One-way physical delay along the forwarding path, in ms."""
        path = self.forwarding_path(src, dst, flow_id=flow_id)
        return self.path_delays_ms(path)[-1]

    def inbound_interfaces(self, path: "list[Router]") -> "list[Optional[Interface]]":
        """For each router on *path*, the interface the packet arrived on.

        The first element (the source) has no inbound interface.  The
        inbound interface determines the ICMP reply address for routers
        with an ``inbound`` reply policy.
        """
        result: "list[Optional[Interface]]" = [None]
        for prev, cur in zip(path, path[1:]):
            inbound = None
            for neighbor_uid, _w, link in self._adj[prev.uid]:
                if neighbor_uid != cur.uid:
                    continue
                iface = link.a if link.a.router is cur else link.b
                inbound = iface
                break
            result.append(inbound)
        return result

    def neighbors(self, router: Router) -> "list[Router]":
        """Directly connected routers."""
        return [self.routers[uid] for uid, _w, _l in self._adj[router.uid]]

    def degree(self, router: Router) -> int:
        """Number of links attached to *router*."""
        return len(self._adj[router.uid])

    # ------------------------------------------------------------------
    # Convenience iteration
    # ------------------------------------------------------------------
    def routers_where(self, predicate) -> "list[Router]":
        """All routers satisfying *predicate* (ground-truth helpers)."""
        return [r for r in self.routers.values() if predicate(r)]

    def all_addresses(self) -> Iterable[str]:
        """Every assigned interface address."""
        return self._addr_owner.keys()
