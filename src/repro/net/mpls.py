"""MPLS label-switched paths.

The paper's AT&T and Charter case studies both contend with MPLS
tunnels that hide interior routers from traceroute (§4, §6, App. B.2,
App. C).  The model captures the two behaviours the methodology needs:

* **Invisible interiors** — a traceroute whose destination lies beyond
  the tunnel egress sees the ingress hop followed directly by the
  egress (or the first hop past it), with the interior hops absent.
  This creates the false ingress→egress links that Appendix B.2 prunes.
* **Direct Path Revelation (DPR)** — a traceroute *targeted at* the
  tunnel's egress interface (or at an interior router address) is
  routed as plain IP and reveals the interior hops (Vanaubel et al.,
  used in §6.1 / App. C, Table 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import TopologyError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.router import Router


@dataclass
class MplsTunnel:
    """A unidirectional LSP from *ingress* to *egress*.

    ``interior`` lists the label-switching routers strictly between the
    two endpoints.  When ``ttl_propagate`` is False (the "pipe" model,
    and AT&T's observed configuration), interior routers do not
    decrement the IP TTL, so they never generate ICMP time-exceeded
    messages for through traffic.
    """

    ingress: "Router"
    egress: "Router"
    interior: "tuple[Router, ...]" = ()
    ttl_propagate: bool = False
    name: str = ""

    def __post_init__(self) -> None:
        if self.ingress is self.egress:
            raise TopologyError("an LSP needs distinct ingress and egress routers")
        if self.ingress in self.interior or self.egress in self.interior:
            raise TopologyError("tunnel endpoints cannot also be interior hops")

    @property
    def tunnel_id(self) -> str:
        """Stable identifier for fault plans and bookkeeping."""
        return self.name or f"{self.ingress.uid}>{self.egress.uid}"

    def hides(self, router: "Router", destination_router: "Router") -> bool:
        """True when *router* is invisible for traffic to *destination_router*.

        Interior hops are hidden unless the destination is itself the
        egress or one of the interior routers (the DPR condition), or
        the tunnel propagates TTL.
        """
        if self.ttl_propagate:
            return False
        if router not in self.interior:
            return False
        if destination_router is self.egress or destination_router in self.interior:
            return False
        return True


class MplsDomain:
    """The set of LSPs configured inside one network.

    Two configuration shapes are supported:

    * explicit :class:`MplsTunnel` objects (the Charter case — a
      bounded set of ingress/egress pairs);
    * blanket **LSR rules** for provider cores where every interior
      router label-switches all through traffic (the AT&T case): the
      listed routers are hidden from traceroute unless the probe's
      destination router is itself part of the domain's infrastructure
      set — which is exactly the Direct Path Revelation condition used
      in §6.1 / Appendix C.
    """

    def __init__(self) -> None:
        self.tunnels: list[MplsTunnel] = []
        self._by_ingress: dict[str, list[MplsTunnel]] = {}
        #: (hidden router uids, revealing destination router uids)
        self._lsr_rules: list[tuple[frozenset, frozenset]] = []

    def add_lsr_rule(self, hidden_routers, reveal_destinations) -> None:
        """Hide *hidden_routers* except for probes destined to *reveal_destinations*."""
        self._lsr_rules.append(
            (
                frozenset(r.uid for r in hidden_routers),
                frozenset(r.uid for r in reveal_destinations),
            )
        )

    def add(self, tunnel: MplsTunnel) -> MplsTunnel:
        """Register an LSP."""
        self.tunnels.append(tunnel)
        self._by_ingress.setdefault(tunnel.ingress.uid, []).append(tunnel)
        return tunnel

    def tunnel_through(self, path_routers: "list[Router]") -> "list[MplsTunnel]":
        """Return LSPs whose ingress and egress both appear, in order, on *path_routers*."""
        index = {router.uid: i for i, router in enumerate(path_routers)}
        found = []
        for router in path_routers:
            for tunnel in self._by_ingress.get(router.uid, ()):
                i = index[tunnel.ingress.uid]
                j = index.get(tunnel.egress.uid)
                if j is not None and i < j:
                    found.append(tunnel)
        return found

    def visible_path(
        self,
        path_routers: "list[Router]",
        destination: "Router",
        down: "frozenset[str] | set[str]" = frozenset(),
    ) -> "list[Router]":
        """Filter a forwarding path down to the routers traceroute can see.

        Tunnels whose :attr:`~MplsTunnel.tunnel_id` appears in *down*
        are flapped: their traffic rides plain IP for this trace, so
        they hide nothing (the interior becomes visible exactly as a
        DPR probe would see it).
        """
        tunnels = self.tunnel_through(path_routers)
        if down:
            tunnels = [t for t in tunnels if t.tunnel_id not in down]
        hidden_by_rule: set[str] = set()
        for lsrs, reveal in self._lsr_rules:
            if destination.uid in reveal:
                continue
            hidden_by_rule |= lsrs
        if not tunnels and not hidden_by_rule:
            return list(path_routers)
        visible = []
        for router in path_routers:
            if router.uid in hidden_by_rule and router is not destination:
                continue
            if any(t.hides(router, destination) for t in tunnels):
                continue
            visible.append(router)
        return visible
