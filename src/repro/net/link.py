"""Point-to-point links between router interfaces.

Links carry a geographic length; propagation delay follows from the
speed of light in fiber (~2/3 c, i.e. ~200 km per millisecond one-way).
The latency findings of the paper (Fig 9, Fig 10, Table 2) are driven
almost entirely by this geometry, so the link model keeps it explicit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import TopologyError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.router import Interface

#: One-way fiber propagation speed, km per millisecond.
FIBER_KM_PER_MS = 200.0

#: Per-hop forwarding/processing delay added at each router, ms.
PER_HOP_PROCESSING_MS = 0.05


@dataclass
class Link:
    """A bidirectional point-to-point link between two interfaces."""

    a: "Interface"
    b: "Interface"
    length_km: float = 1.0
    #: Extra fixed one-way delay (e.g. last-mile DOCSIS/DSL serialization).
    extra_delay_ms: float = 0.0
    #: Configured IGP metric.  When set, routing uses it instead of the
    #: propagation delay; ISPs give redundant dual-star links *equal*
    #: metrics, which is what creates the ECMP diversity that lets
    #: traceroute observe both AggCOs of a pair (§5.2.2).  RTTs always
    #: come from the physical delay regardless of metric.
    metric: "float | None" = None
    #: Ground-truth annotation: which fiber ring this link rides on.
    ring: object = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.length_km < 0:
            raise TopologyError("link length cannot be negative")
        self.a.link = self
        self.b.link = self

    @property
    def delay_ms(self) -> float:
        """One-way propagation + fixed delay for this link, in ms."""
        return self.length_km / FIBER_KM_PER_MS + self.extra_delay_ms

    @property
    def routing_weight(self) -> float:
        """What the IGP shortest-path computation sees for this link."""
        if self.metric is not None:
            return self.metric
        return self.delay_ms + PER_HOP_PROCESSING_MS

    def other(self, iface: "Interface") -> "Interface":
        """The interface at the opposite end from *iface*."""
        if iface is self.a:
            return self.b
        if iface is self.b:
            return self.a
        raise TopologyError("interface is not attached to this link")

    def routers(self):
        """The two routers this link joins."""
        return self.a.router, self.b.router
