"""Reverse DNS (PTR) store with staleness.

The paper's cable-network methodology leans on rDNS hostnames that
embed CO identifiers, and much of its heuristic machinery exists to
cope with *stale* names — PTR records left behind when equipment moved
between COs (§5, Appendix B).  The store therefore tracks two epochs:

* ``dig`` — the live record, what an on-demand PTR query returns;
* ``snapshot`` — a Rapid7-style bulk snapshot, which may lag the live
  zone and contain additional stale entries.

The paper prioritizes dig results over the snapshot (Appendix B.1);
:meth:`RdnsStore.lookup` implements the same priority.  Ground-truth
staleness flags are kept for scoring only.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.net.addresses import IPAddress
from repro.perf.cache import normalize_address


class RdnsStore:
    """PTR database for the simulated internet."""

    def __init__(self) -> None:
        self._dig: dict[str, str] = {}
        self._snapshot: dict[str, str] = {}
        self._stale: set[str] = set()
        #: Active fault injector (set via ``Network.attach_faults``);
        #: None ⇒ dig never times out.
        self.faults = None
        #: Mutation counter: bumps on every record change, so memoizing
        #: layers (:class:`repro.perf.cache.InferenceCache`) know when
        #: their lookup-derived entries are stale.
        self.epoch = 0

    def __len__(self) -> int:
        return len(set(self._dig) | set(self._snapshot))

    def set(self, address: "str | IPAddress", hostname: str, snapshot: bool = True) -> None:
        """Record a live PTR entry (and, by default, mirror it in the snapshot)."""
        key = normalize_address(address)
        self.epoch += 1
        self._dig[key] = hostname
        if snapshot:
            self._snapshot[key] = hostname

    def set_stale(self, address: "str | IPAddress", hostname: str, in_dig: bool = True) -> None:
        """Record a *stale* PTR entry — a name describing the wrong CO.

        When ``in_dig`` is False the stale name only exists in the bulk
        snapshot (the zone was fixed but the snapshot predates the fix).
        """
        key = normalize_address(address)
        self.epoch += 1
        self._snapshot[key] = hostname
        if in_dig:
            self._dig[key] = hostname
        self._stale.add(key)

    def remove(self, address: "str | IPAddress") -> None:
        """Delete any record for *address* from both epochs."""
        key = normalize_address(address)
        self.epoch += 1
        self._dig.pop(key, None)
        self._snapshot.pop(key, None)
        self._stale.discard(key)

    def dig(self, address: "str | IPAddress", fault_key: object = None) -> Optional[str]:
        """A live PTR query; may time out transiently under fault injection.

        *fault_key* lets probe-path callers key the timeout decision on
        the probe identity (order-independent, hence checkpoint-safe);
        bare callers leave it None and get a per-address call counter.
        """
        key = normalize_address(address)
        if self.faults is not None and self.faults.rdns_timeout(key, fault_key):
            return None
        return self._dig.get(key)

    def dig_record(self, address: "str | IPAddress") -> Optional[str]:
        """The raw live record, bypassing fault injection.

        Exists so execution layers that carry their *own* injector (the
        parallel campaign runner's per-worker substrate views) can
        re-implement :meth:`dig` against it without consulting the
        injector attached to this store.
        """
        return self._dig.get(normalize_address(address))

    def snapshot_lookup(self, address: "str | IPAddress") -> Optional[str]:
        """A lookup against the bulk snapshot."""
        return self._snapshot.get(normalize_address(address))

    def lookup(self, address: "str | IPAddress") -> Optional[str]:
        """Combined lookup, preferring the live record (App. B.1).

        Under fault injection with ``stale_rdns`` active, some
        addresses consistently return a donor hostname from elsewhere
        in the snapshot — synthetic stale records for exercising the
        inference-side guardrails.
        """
        key = normalize_address(address)
        name = self._dig.get(key) or self._snapshot.get(key)
        if self.faults is not None and name is not None:
            name = self.faults.stale_hostname(key, name, self)
        return name

    def snapshot_items(self) -> Iterator["tuple[str, str]"]:
        """Iterate the bulk snapshot, Rapid7-dataset style."""
        return iter(sorted(self._snapshot.items()))

    def addresses_matching(self, pattern) -> "list[str]":
        """All snapshot addresses whose hostname matches a compiled regex."""
        return [addr for addr, name in self.snapshot_items() if pattern.search(name)]

    def is_stale(self, address: "str | IPAddress") -> bool:
        """Ground truth: whether the record is stale (scoring only)."""
        return normalize_address(address) in self._stale

    @property
    def stale_count(self) -> int:
        """Ground truth: number of stale records (scoring only)."""
        return len(self._stale)
