"""Simulated internet primitives.

Everything in this subpackage is ISP-agnostic: addresses and prefixes,
routers with interfaces and ICMP reply behaviour, point-to-point links,
MPLS label-switched paths, a reverse-DNS store, and :class:`Network`,
the packet-forwarding substrate that the measurement tools probe.
"""

from repro.net.addresses import (
    Ipv4Allocator,
    Ipv6FieldCodec,
    p2p_peer,
    parse_ip,
    same_subnet,
)
from repro.net.dns import RdnsStore
from repro.net.link import Link
from repro.net.mpls import MplsTunnel
from repro.net.router import Interface, ReplyPolicy, Router
from repro.net.network import Network

__all__ = [
    "Interface",
    "Ipv4Allocator",
    "Ipv6FieldCodec",
    "Link",
    "MplsTunnel",
    "Network",
    "RdnsStore",
    "ReplyPolicy",
    "Router",
    "p2p_peer",
    "parse_ip",
    "same_subnet",
]
