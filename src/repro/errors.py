"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class AddressError(ReproError):
    """An address or prefix was malformed or exhausted."""


class TopologyError(ReproError):
    """A topology generator or the simulated network was misconfigured."""


class RoutingError(ReproError):
    """No route exists between two endpoints of the simulated network."""


class MeasurementError(ReproError):
    """A measurement campaign was configured inconsistently."""


class CampaignError(MeasurementError):
    """A campaign could not make progress (fleet exhausted, bad state)."""


class VantagePointLost(CampaignError):
    """A vantage point disappeared mid-campaign (dropout or flap)."""


class CampaignInterrupted(CampaignError):
    """A campaign was stopped mid-run; a checkpoint holds its progress."""


class CheckpointError(ReproError):
    """A campaign checkpoint file was missing, corrupt, or incompatible."""


class ServiceError(ReproError):
    """The campaign service hit unusable state (corrupt journal, bad spec)."""


class AdmissionRejected(ServiceError):
    """A job submission was rejected by admission control (queue full)."""


class InferenceError(ReproError):
    """The inference pipeline received input it cannot process."""


class SchemaError(ReproError):
    """A JSON artifact was malformed; the message names the JSON path."""


class InvariantViolation(InferenceError):
    """A pipeline stage broke a structural invariant it should establish."""
