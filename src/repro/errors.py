"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class AddressError(ReproError):
    """An address or prefix was malformed or exhausted."""


class TopologyError(ReproError):
    """A topology generator or the simulated network was misconfigured."""


class RoutingError(ReproError):
    """No route exists between two endpoints of the simulated network."""


class MeasurementError(ReproError):
    """A measurement campaign was configured inconsistently."""


class InferenceError(ReproError):
    """The inference pipeline received input it cannot process."""
