"""Seeded, deterministic fault plans.

The paper's campaigns ran against a hostile measurement floor: routers
rate-limit ICMP, hops go silent, hotspot VPs kick the prober mid-sweep
(§6.1), and phones lose signal across rural stretches (§7.1.1).  A
:class:`FaultPlan` describes a controllable dose of those conditions so
experiments can quantify how measurement failure distorts the inferred
topology ("Misleading Stars"-style ablations) and so the resilient
campaign layer has something to recover from.

Every decision is drawn from ``random.Random`` seeded with the plan
seed *and* the identity of the event being decided (per the repo rule
that all randomness is seeded).  Keying the generator on the event
identity rather than sharing one stream makes every draw independent of
call order, which is what lets a killed campaign resume from a
checkpoint and converge on the same output as an uninterrupted run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic dose of measurement failure.

    ``probe_loss``
        Probability any single probe (one TTL, one attempt) is lost in
        flight — models congestion loss and the unresponsive hops of
        §5.1.  Retries draw fresh keys, so losses are transient.
    ``rate_limit_share`` / ``rate_limit_pass``
        A ``rate_limit_share`` fraction of routers police ICMP
        generation; a policed router answers only a ``rate_limit_pass``
        fraction of probe identities (token-bucket exhaustion viewed
        statistically).  Retries may land in an open window.
    ``rdns_timeout``
        Probability a live ``dig`` PTR query times out transiently.
    ``vp_dropout`` / ``vp_dropout_after``
        ``vp_dropout`` vantage points (chosen deterministically from
        the registered fleet) die for good after sending
        ``vp_dropout_after`` probes — the hotspot that kicks the
        prober mid-sweep (§6.1).
    ``vp_flap``
        Probability a VP is transiently unusable for one traceroute
        (association drop / signal fade, §7.1.1); retryable.
    ``lsp_flap``
        Probability an MPLS LSP is down for the duration of one
        traceroute, causing the flow to ride plain IP and expose the
        tunnel interior that is normally hidden.
    ``stale_rdns``
        Probability a given address's combined PTR lookup returns a
        *donor* hostname — a name harvested from a different address in
        the snapshot — modelling the stale records left behind when
        equipment moves between COs (§4–§5, App. B.1).  Keyed per
        address, so every lookup of one address is consistently stale;
        this is the synthetic conflicting-rDNS campaign the
        inference-side guardrails quarantine.
    ``worker_crash`` / ``worker_stall`` / ``worker_slow``
        Process-level faults consulted by the supervised shard
        executor's *workers* (never by the probe path, so the serial
        oracle's corpus is untouched).  Each is the probability that
        one (shard, attempt) execution crashes hard (SIGKILL mid-shard,
        between heartbeats), stalls silently (stops heartbeating until
        the supervisor kills it), or runs slow (sleeps
        ``worker_slow_ms`` but completes).  Keyed on the shard id *and*
        the attempt number, so a retried shard draws fresh fate — a
        crash-prone shard recovers with probability 1 - rateᴺ across N
        retries, and a chaos run is exactly reproducible from the seed.
    """

    seed: int = 0
    probe_loss: float = 0.0
    rate_limit_share: float = 0.0
    rate_limit_pass: float = 0.5
    rdns_timeout: float = 0.0
    vp_dropout: int = 0
    vp_dropout_after: int = 0
    vp_flap: float = 0.0
    lsp_flap: float = 0.0
    stale_rdns: float = 0.0
    worker_crash: float = 0.0
    worker_stall: float = 0.0
    worker_slow: float = 0.0
    worker_slow_ms: float = 100.0

    # ------------------------------------------------------------------
    def _draw(self, *key: object) -> float:
        """One U(0,1) draw keyed on the event identity (order-free)."""
        text = "|".join(str(part) for part in key)
        return random.Random(f"faultplan|{self.seed}|{text}").random()

    @property
    def active(self) -> bool:
        """False when the plan injects nothing (the no-op plan)."""
        numeric = (
            self.probe_loss, self.rate_limit_share, self.rdns_timeout,
            self.vp_flap, self.lsp_flap, self.stale_rdns,
            self.worker_crash, self.worker_stall, self.worker_slow,
        )
        return any(v > 0.0 for v in numeric) or self.vp_dropout > 0

    # ------------------------------------------------------------------
    # Per-event decisions
    # ------------------------------------------------------------------
    def probe_lost(self, probe_key: object) -> bool:
        """Whether this probe is lost in flight."""
        return (
            self.probe_loss > 0.0
            and self._draw("loss", probe_key) < self.probe_loss
        )

    def router_rate_limits(self, router_uid: str) -> bool:
        """Whether *router_uid* polices its ICMP generation at all."""
        return (
            self.rate_limit_share > 0.0
            and self._draw("rl-router", router_uid) < self.rate_limit_share
        )

    def rate_limited(self, router_uid: str, probe_key: object) -> bool:
        """Whether the router's rate limiter eats this probe."""
        if not self.router_rate_limits(router_uid):
            return False
        return self._draw("rl-window", router_uid, probe_key) >= self.rate_limit_pass

    def rdns_timed_out(self, address: str, token: object) -> bool:
        """Whether a ``dig`` for *address* times out this time."""
        return (
            self.rdns_timeout > 0.0
            and self._draw("rdns", address, token) < self.rdns_timeout
        )

    def doomed_vps(self, names) -> "tuple[str, ...]":
        """The ``vp_dropout`` fleet members fated to die (stable pick)."""
        ordered = sorted(set(names))
        count = min(self.vp_dropout, len(ordered))
        if count <= 0:
            return ()
        rng = random.Random(f"faultplan|{self.seed}|vp-dropout")
        return tuple(sorted(rng.sample(ordered, count)))

    def vp_flapped(self, vp_name: str, token: object) -> bool:
        """Whether *vp_name* is transiently unusable for this trace."""
        return (
            self.vp_flap > 0.0
            and self._draw("vp-flap", vp_name, token) < self.vp_flap
        )

    def lsp_down(self, tunnel_id: str, token: object) -> bool:
        """Whether this LSP is flapped down for the duration of a trace."""
        return (
            self.lsp_flap > 0.0
            and self._draw("lsp", tunnel_id, token) < self.lsp_flap
        )

    def rdns_stale(self, address: str) -> bool:
        """Whether *address*'s PTR record is stale (stable per address)."""
        return (
            self.stale_rdns > 0.0
            and self._draw("stale-rdns", address) < self.stale_rdns
        )

    def stale_donor_index(self, address: str, count: int) -> int:
        """Which of *count* donor hostnames a stale address borrows."""
        return int(self._draw("stale-donor", address) * count) % count

    # ------------------------------------------------------------------
    # Process-level (shard executor) decisions
    # ------------------------------------------------------------------
    def worker_crashed(self, shard_id: str, attempt: int) -> bool:
        """Whether the worker running this (shard, attempt) dies hard."""
        return (
            self.worker_crash > 0.0
            and self._draw("worker-crash", shard_id, attempt) < self.worker_crash
        )

    def worker_stalled(self, shard_id: str, attempt: int) -> bool:
        """Whether the worker stops heartbeating mid-shard."""
        return (
            self.worker_stall > 0.0
            and self._draw("worker-stall", shard_id, attempt) < self.worker_stall
        )

    def worker_slowed(self, shard_id: str, attempt: int) -> bool:
        """Whether the worker runs slow (but completes) this attempt."""
        return (
            self.worker_slow > 0.0
            and self._draw("worker-slow", shard_id, attempt) < self.worker_slow
        )

    def retry_jitter(self, key: object, attempt: int) -> float:
        """A U(0,1) jitter factor for retry backoff, keyed per attempt.

        Both the supervised shard executor and the campaign service
        scale their exponential backoff by ``0.5 + retry_jitter(...)``
        so retries desynchronize without losing reproducibility: the
        jitter comes from the same seeded, event-keyed stream as every
        other fault decision, so a chaos soak run is identical
        run-to-run.
        """
        return self._draw("retry-jitter", key, attempt)

    def failure_point(
        self, shard_id: str, attempt: int, job_count: int, kind: str = "crash"
    ) -> int:
        """Which job index a crash/stall interrupts (always < job_count)."""
        if job_count <= 0:
            return 0
        index = int(
            self._draw(f"worker-point-{kind}", shard_id, attempt) * job_count
        )
        return min(index, job_count - 1)

    # ------------------------------------------------------------------
    def as_dict(self) -> "dict[str, object]":
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: "dict[str, object]") -> "FaultPlan":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})
