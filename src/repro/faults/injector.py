"""Wiring a :class:`~repro.faults.plan.FaultPlan` into the substrate.

The injector sits between the plan (pure, order-independent decisions)
and the measurement stack (which needs bookkeeping): it counts every
injected event, tracks how many probes each vantage point has sent so
dropout thresholds fire at the right moment, and serializes that state
into campaign checkpoints so a resumed run continues exactly where the
killed one left off.

Attachment is via :meth:`repro.net.network.Network.attach_faults`; with
no injector attached every hook is a no-op and the substrate behaves
byte-identically to the fault-free seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.plan import FaultPlan


@dataclass
class FaultStats:
    """Counts of injected events, by fault class."""

    probes_lost: int = 0
    rate_limited: int = 0
    rdns_timeouts: int = 0
    vp_flaps: int = 0
    lsp_flaps: int = 0
    stale_lookups: int = 0
    worker_crashes: int = 0
    worker_stalls: int = 0
    worker_slowdowns: int = 0
    vps_killed: "list[str]" = field(default_factory=list)

    def as_dict(self) -> "dict[str, object]":
        return {
            "probes_lost": self.probes_lost,
            "rate_limited": self.rate_limited,
            "rdns_timeouts": self.rdns_timeouts,
            "vp_flaps": self.vp_flaps,
            "lsp_flaps": self.lsp_flaps,
            "stale_lookups": self.stale_lookups,
            "worker_crashes": self.worker_crashes,
            "worker_stalls": self.worker_stalls,
            "worker_slowdowns": self.worker_slowdowns,
            "vps_killed": sorted(self.vps_killed),
        }

    @classmethod
    def from_dict(cls, payload: "dict[str, object]") -> "FaultStats":
        stats = cls()
        stats.probes_lost = int(payload.get("probes_lost", 0))
        stats.rate_limited = int(payload.get("rate_limited", 0))
        stats.rdns_timeouts = int(payload.get("rdns_timeouts", 0))
        stats.vp_flaps = int(payload.get("vp_flaps", 0))
        stats.lsp_flaps = int(payload.get("lsp_flaps", 0))
        stats.stale_lookups = int(payload.get("stale_lookups", 0))
        stats.worker_crashes = int(payload.get("worker_crashes", 0))
        stats.worker_stalls = int(payload.get("worker_stalls", 0))
        stats.worker_slowdowns = int(payload.get("worker_slowdowns", 0))
        stats.vps_killed = list(payload.get("vps_killed", []))
        return stats

    def publish_metrics(self, metrics, prefix: str = "faults.") -> None:
        """Publish injected-event counts, by fault class, as gauges."""
        for name, value in self.as_dict().items():
            if name == "vps_killed":
                metrics.set_gauge(f"{prefix}vps_killed", len(value))
            else:
                metrics.set_gauge(f"{prefix}{name}", value)


class FaultInjector:
    """Stateful adapter between a :class:`FaultPlan` and the substrate."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.stats = FaultStats()
        #: Probes sent per VP (drives the dropout threshold).
        self._vp_probes: "dict[str, int]" = {}
        self._doomed: "set[str]" = set()
        self._dead: "set[str]" = set()
        self._rdns_calls: "dict[str, int]" = {}
        #: Donor hostnames for stale-rDNS injection (built lazily from
        #: the store's snapshot; stable for the campaign's duration).
        self._stale_donors: "list[str] | None" = None
        self._stale_seen: "set[str]" = set()

    # ------------------------------------------------------------------
    # Probe-path hooks (consulted by Tracerouter / alias probers)
    # ------------------------------------------------------------------
    def probe_lost(self, probe_key: object) -> bool:
        if self.plan.probe_lost(probe_key):
            self.stats.probes_lost += 1
            return True
        return False

    def rate_limited(self, router_uid: str, probe_key: object) -> bool:
        if self.plan.rate_limited(router_uid, probe_key):
            self.stats.rate_limited += 1
            return True
        return False

    def rdns_timeout(self, address: str, token: object = None) -> bool:
        """Whether this ``dig`` times out; transient across retries.

        Callers on the probe path pass their probe key as *token* so
        the decision is order-independent; bare callers fall back to a
        per-address call counter (still deterministic for a fixed call
        sequence).
        """
        if token is None:
            token = self._rdns_calls.get(address, 0)
            self._rdns_calls[address] = token + 1
        if self.plan.rdns_timed_out(address, token):
            self.stats.rdns_timeouts += 1
            return True
        return False

    def stale_hostname(self, address: str, hostname: str, store) -> str:
        """The hostname a combined PTR lookup should return.

        With ``stale_rdns`` active, a deterministically-chosen share of
        addresses borrow a *donor* hostname from elsewhere in *store*'s
        snapshot — the stale record a real zone accumulates when
        equipment moves between COs.  The decision and the donor are
        both keyed on the address alone, so repeated lookups agree.
        """
        if self.plan.stale_rdns <= 0.0 or not self.plan.rdns_stale(address):
            return hostname
        if self._stale_donors is None:
            self._stale_donors = sorted(
                {name for _, name in store.snapshot_items()}
            )
        if not self._stale_donors:
            return hostname
        index = self.plan.stale_donor_index(address, len(self._stale_donors))
        donor = self._stale_donors[index]
        if donor == hostname:
            return hostname
        if address not in self._stale_seen:
            self._stale_seen.add(address)
            self.stats.stale_lookups += 1
        return donor

    def down_tunnels(self, tunnels, token: object) -> "frozenset[str]":
        """Tunnel ids flapped down for the trace identified by *token*."""
        if self.plan.lsp_flap <= 0.0 or not tunnels:
            return frozenset()
        down = frozenset(
            t.tunnel_id for t in tunnels if self.plan.lsp_down(t.tunnel_id, token)
        )
        self.stats.lsp_flaps += len(down)
        return down

    # ------------------------------------------------------------------
    # Vantage-point lifecycle (consulted by CampaignRunner)
    # ------------------------------------------------------------------
    def register_fleet(self, names) -> None:
        """Tell the injector which VPs exist so dropout picks are stable."""
        self._doomed |= set(self.plan.doomed_vps(names))

    def vp_alive(self, name: str) -> bool:
        return name not in self._dead

    def vp_flapped(self, name: str, token: object) -> bool:
        if self.plan.vp_flapped(name, token):
            self.stats.vp_flaps += 1
            return True
        return False

    def vp_add_probes(self, name: str, count: int) -> bool:
        """Account *count* probes to a VP; returns False when it dies."""
        total = self._vp_probes.get(name, 0) + count
        self._vp_probes[name] = total
        if (
            name in self._doomed
            and name not in self._dead
            and total >= self.plan.vp_dropout_after
        ):
            self._dead.add(name)
            self.stats.vps_killed.append(name)
            return False
        return True

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> "dict[str, object]":
        return {
            "plan": self.plan.as_dict(),
            "vp_probes": dict(sorted(self._vp_probes.items())),
            "doomed": sorted(self._doomed),
            "dead": sorted(self._dead),
            "stats": self.stats.as_dict(),
        }

    def restore_state(self, payload: "dict[str, object]") -> None:
        self._vp_probes = dict(payload.get("vp_probes", {}))
        self._doomed = set(payload.get("doomed", []))
        self._dead = set(payload.get("dead", []))
        self.stats = FaultStats.from_dict(payload.get("stats", {}))
