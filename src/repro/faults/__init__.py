"""Seeded fault injection for measurement campaigns.

:class:`FaultPlan` decides, deterministically per event, which probes
are lost, which routers rate-limit, which ``dig`` queries time out,
which vantage points die or flap, and which MPLS LSPs flap;
:class:`FaultInjector` wires those decisions into the substrate and
keeps the bookkeeping that campaign checkpoints persist.
"""

from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.plan import FaultPlan

__all__ = ["FaultInjector", "FaultPlan", "FaultStats"]
